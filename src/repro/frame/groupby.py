"""Hash-based group-by / aggregation kernel.

The group-by implementation mirrors what every library in the paper does
logically: build a hash table over the key tuples, collect row indices per
group, then compute the requested aggregates per group.

Two physical kernels implement the same semantics:

* the **reference** kernel (``"object"`` backend): a Python dict over key
  tuples (:func:`group_indices`) and a per-group reduction loop
  (:func:`_aggregate_one`) — the behavioural oracle for the property tests;
* the **vectorized** kernel (``"dict"`` backend, or whenever a key column is
  dictionary-encoded): keys factorize to int64 codes (dictionary columns use
  their codes directly), multi-column keys fold with mixed-radix combination
  + compression, group ids are ranked in first-appearance order, and the
  aggregates run as ``bincount``/segmented-sort passes with no per-row
  Python.

Supported aggregate functions: ``sum``, ``mean``, ``min``, ``max``, ``count``,
``nunique``, ``std``, ``var``, ``first``, ``last``, ``median``.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping, Sequence

import numpy as np

from .backends import DICT_BACKEND, active_backend
from .column import Column
from .dictionary import DictStringColumn
from .dtypes import CATEGORICAL, FLOAT64, INT64, STRING
from .errors import ColumnNotFoundError, UnsupportedOperationError

__all__ = ["AGG_FUNCTIONS", "group_indices", "aggregate", "GroupBy"]

AGG_FUNCTIONS = (
    "sum", "mean", "min", "max", "count", "nunique", "std", "var",
    "first", "last", "median",
)


def group_indices(columns: Sequence[Column]) -> tuple[list[tuple], list[np.ndarray]]:
    """Compute (key tuples, row-index arrays) for a list of key columns.

    Null keys participate as their own group (Pandas' ``dropna=False``
    semantics are not used here; nulls are kept, matching Polars/Spark).
    Groups are returned in first-appearance order to keep results stable.
    """
    if not columns:
        raise UnsupportedOperationError("group_indices requires at least one key column")
    n = len(columns[0])
    key_lists = [col.to_list() for col in columns]
    buckets: dict[tuple, list[int]] = {}
    order: list[tuple] = []
    for row in range(n):
        key = tuple(key_list[row] for key_list in key_lists)
        bucket = buckets.get(key)
        if bucket is None:
            buckets[key] = [row]
            order.append(key)
        else:
            bucket.append(row)
    return order, [np.asarray(buckets[key], dtype=np.int64) for key in order]


def _aggregate_one(column: Column, indices: np.ndarray, func: str) -> Any:
    sub = column.take(indices)
    if func == "count":
        return sub.count()
    if func == "nunique":
        return sub.nunique()
    if func == "first":
        values = sub.to_list()
        return next((v for v in values if v is not None), None)
    if func == "last":
        values = sub.to_list()
        return next((v for v in reversed(values) if v is not None), None)
    if func == "min":
        return sub.min()
    if func == "max":
        return sub.max()
    if func == "sum":
        return sub.sum()
    if func == "mean":
        return sub.mean()
    if func == "std":
        return sub.std()
    if func == "var":
        return sub.var()
    if func == "median":
        return sub.quantile(0.5)
    raise UnsupportedOperationError(f"unknown aggregate function {func!r}")


def _result_dtype(column: Column, func: str):
    if func in ("count", "nunique"):
        return INT64
    if func in ("mean", "std", "var", "median"):
        return FLOAT64
    if func in ("sum",):
        return FLOAT64 if column.dtype is FLOAT64 else INT64
    return column.dtype if column.dtype.value != "categorical" else STRING


# --------------------------------------------------------------------------- #
# vectorized kernel
# --------------------------------------------------------------------------- #
def _use_vectorized(key_columns: Sequence[Column]) -> bool:
    if active_backend() == DICT_BACKEND:
        return True
    return any(isinstance(col, DictStringColumn) for col in key_columns)


def _factorize_keys(column: Column) -> np.ndarray:
    """Per-row int64 codes; every null row maps to one shared extra code."""
    n = len(column)
    valid = np.asarray(column.validity, dtype=bool)
    if isinstance(column, DictStringColumn) or column.dtype is CATEGORICAL:
        null_code = len(column.categories)
        return np.where(valid, column.values.astype(np.int64), null_code)
    present = column.values[valid]
    out = np.zeros(n, dtype=np.int64)
    if present.size:
        _, inverse = np.unique(present, return_inverse=True)
        out[:] = int(inverse.max()) + 1
        out[valid] = inverse.astype(np.int64)
    return out


def _group_ids(key_columns: Sequence[Column]) -> tuple[np.ndarray, np.ndarray, int]:
    """(per-row group id, representative row per group, group count).

    Group ids are ranked in first-appearance order, matching
    :func:`group_indices`.
    """
    key = _factorize_keys(key_columns[0])
    for column in key_columns[1:]:
        codes = _factorize_keys(column)
        card = max(int(codes.max(initial=0)) + 1, 1)
        key = key * card + codes
        # compress after every fold so magnitudes stay < n and never overflow
        _, key = np.unique(key, return_inverse=True)
        key = key.astype(np.int64)
    uniq, first, inverse = np.unique(key, return_index=True, return_inverse=True)
    order = np.argsort(first, kind="stable")
    rank = np.empty(len(uniq), dtype=np.int64)
    rank[order] = np.arange(len(uniq), dtype=np.int64)
    gid = rank[inverse.astype(np.int64)]
    return gid, first[order].astype(np.int64), len(uniq)


class _VectorAggregator:
    """Vectorized per-group aggregation over precomputed group ids."""

    def __init__(self, gid: np.ndarray, n_groups: int):
        self.gid = gid
        self.n_groups = n_groups
        self._cache: dict[int, dict[str, Any]] = {}

    def _state(self, column: Column) -> dict[str, Any]:
        state = self._cache.get(id(column))
        if state is None:
            valid = np.asarray(column.validity, dtype=bool)
            gidv = self.gid[valid]
            state = {
                "column": column,
                "valid": valid,
                "gidv": gidv,
                "counts": np.bincount(gidv, minlength=self.n_groups).astype(np.int64),
            }
            self._cache[id(column)] = state
        return state

    def _floats(self, state: dict[str, Any]) -> np.ndarray:
        if "floats" not in state:
            column, valid = state["column"], state["valid"]
            state["floats"] = column.values[valid].astype(np.float64)
        return state["floats"]

    def _sums(self, state: dict[str, Any]) -> np.ndarray:
        if "sums" not in state:
            state["sums"] = np.bincount(state["gidv"], weights=self._floats(state),
                                        minlength=self.n_groups)
        return state["sums"]

    def _order_state(self, state: dict[str, Any]) -> tuple[np.ndarray, Callable, np.ndarray]:
        """Group-segmented sort of the valid values, with a decoder."""
        if "sorted_keys" not in state:
            column, valid = state["column"], state["valid"]
            if isinstance(column, DictStringColumn) or column.dtype is CATEGORICAL:
                categories = column.categories
                keys = column.values[valid].astype(np.int64)
                decode = lambda k: categories[int(k)]  # noqa: E731
            elif column.dtype is STRING:
                present = column.values[valid]
                uniq, inverse = (np.unique(present, return_inverse=True)
                                 if present.size else (np.empty(0, object), np.empty(0, np.int64)))
                keys = inverse.astype(np.int64)
                decode = lambda k: uniq[int(k)]  # noqa: E731
            else:
                keys = column.values[valid]
                decode = column._decode
            order = np.lexsort((keys, state["gidv"]))
            state["sorted_keys"] = keys[order]
            state["decode"] = decode
            state["starts"] = np.cumsum(state["counts"]) - state["counts"]
        return state["sorted_keys"], state["decode"], state["starts"]

    def aggregate(self, column: Column, func: str) -> list[Any]:
        state = self._state(column)
        counts = state["counts"]
        groups = range(self.n_groups)
        if func == "count":
            return [int(c) for c in counts]
        if func == "nunique":
            if isinstance(column, DictStringColumn) or column.dtype is CATEGORICAL:
                codes = column.values[state["valid"]].astype(np.int64)
            else:
                present = column.values[state["valid"]]
                if present.size:
                    _, codes = np.unique(present, return_inverse=True)
                    codes = codes.astype(np.int64)
                else:
                    codes = np.empty(0, dtype=np.int64)
            card = max(int(codes.max(initial=0)) + 1, 1)
            pairs = np.unique(state["gidv"] * card + codes)
            per = np.bincount(pairs // card, minlength=self.n_groups)
            return [int(c) for c in per]
        if func in ("first", "last"):
            valid = state["valid"]
            gidv = state["gidv"]
            rows = np.flatnonzero(valid)
            out: list[Any] = [None] * self.n_groups
            if rows.size:
                if func == "first":
                    present, pos = np.unique(gidv, return_index=True)
                else:
                    present, pos = np.unique(gidv[::-1], return_index=True)
                    pos = len(gidv) - 1 - pos
                for g, r in zip(present.tolist(), rows[pos].tolist()):
                    out[g] = column[int(r)]
            return out
        if func in ("min", "max"):
            sorted_keys, decode, starts = self._order_state(state)
            if func == "min":
                picks = starts
            else:
                picks = starts + counts - 1
            return [decode(sorted_keys[int(picks[g])]) if counts[g] else None
                    for g in groups]
        if func == "sum":
            column._ensure_numeric("sum")
            sums = self._sums(state)
            return [float(sums[g]) if counts[g] else 0.0 for g in groups]
        if func == "mean":
            column._ensure_numeric("mean")
            sums = self._sums(state)
            return [float(sums[g] / counts[g]) if counts[g] else None for g in groups]
        if func in ("std", "var"):
            column._ensure_numeric(func)
            sums = self._sums(state)
            means = np.where(counts > 0, sums / np.maximum(counts, 1), 0.0)
            deviations = self._floats(state) - means[state["gidv"]]
            squares = np.bincount(state["gidv"], weights=deviations * deviations,
                                  minlength=self.n_groups)
            out = []
            for g in groups:
                if counts[g] < 2:
                    out.append(None)
                    continue
                std = float(np.sqrt(squares[g] / (counts[g] - 1)))
                out.append(std if func == "std" else std * std)
            return out
        if func == "median":
            column._ensure_numeric("median")
            valid = state["valid"]
            floats = self._floats(state)
            order = np.lexsort((floats, state["gidv"]))
            sorted_floats = floats[order]
            starts = np.cumsum(counts) - counts
            out = []
            for g in groups:
                c = int(counts[g])
                if c == 0:
                    out.append(None)
                    continue
                h = (c - 1) * 0.5
                lo = int(np.floor(h))
                hi = int(np.ceil(h))
                a = sorted_floats[starts[g] + lo]
                b = sorted_floats[starts[g] + hi]
                out.append(float(a + (h - lo) * (b - a)))
            return out
        raise UnsupportedOperationError(f"unknown aggregate function {func!r}")


def _gather_key_column(source: Column, rep_rows: np.ndarray) -> Column:
    if source.dtype is CATEGORICAL:
        # the reference kernel decodes categorical keys to plain strings
        strings = source.to_string_array()[rep_rows]
        return Column.from_values(strings, STRING)
    return source.take(rep_rows)


def _aggregate_vectorized(frame, keys, aggregations) -> dict[str, Column]:
    key_columns = [frame[name] for name in keys]
    gid, rep_rows, n_groups = _group_ids(key_columns)
    aggregator = _VectorAggregator(gid, n_groups)
    data: dict[str, Column] = {}
    for name in keys:
        data[name] = _gather_key_column(frame[name], rep_rows)
    for name, funcs in aggregations.items():
        func_list: Iterable[str] = [funcs] if isinstance(funcs, str) else list(funcs)
        for func in func_list:
            column = frame[name]
            out_values = aggregator.aggregate(column, func)
            out_name = name if isinstance(funcs, str) else f"{name}_{func}"
            if out_name in data:
                out_name = f"{name}_{func}"
            data[out_name] = Column.from_values(out_values, _result_dtype(column, func))
    return data


def aggregate(
    frame: "Any",
    keys: Sequence[str],
    aggregations: Mapping[str, "str | Sequence[str]"],
) -> "Any":
    """Group ``frame`` by ``keys`` and aggregate.

    ``aggregations`` maps column name -> aggregate function (or list of
    functions).  Output columns are named ``col`` for a single function and
    ``col_func`` when several functions are requested for the same column, the
    same flattened naming the paper's Bento pipelines use.
    """
    from .frame import DataFrame  # local import to avoid a cycle

    for name in list(keys) + list(aggregations):
        if name not in frame.columns:
            raise ColumnNotFoundError(name, tuple(frame.columns))

    key_columns = [frame[name] for name in keys]
    if _use_vectorized(key_columns):
        return DataFrame(_aggregate_vectorized(frame, keys, aggregations))

    group_keys, index_arrays = group_indices(key_columns)

    data: dict[str, Column] = {}
    for pos, name in enumerate(keys):
        key_values = [key[pos] for key in group_keys]
        source = frame[name]
        dtype = source.dtype if source.dtype.value != "categorical" else STRING
        data[name] = Column.from_values(key_values, dtype)

    for name, funcs in aggregations.items():
        func_list: Iterable[str] = [funcs] if isinstance(funcs, str) else list(funcs)
        for func in func_list:
            column = frame[name]
            out_values = [_aggregate_one(column, idx, func) for idx in index_arrays]
            out_name = name if isinstance(funcs, str) else f"{name}_{func}"
            if out_name in data:
                out_name = f"{name}_{func}"
            data[out_name] = Column.from_values(out_values, _result_dtype(column, func))

    return DataFrame(data)


class GroupBy:
    """Deferred group-by handle returned by :meth:`DataFrame.groupby`."""

    def __init__(self, frame: "Any", keys: Sequence[str]):
        self._frame = frame
        self._keys = list(keys)

    @property
    def keys(self) -> list[str]:
        return list(self._keys)

    def agg(self, aggregations: Mapping[str, "str | Sequence[str]"]) -> "Any":
        return aggregate(self._frame, self._keys, aggregations)

    def size(self) -> "Any":
        """Group sizes as a ``count`` column (rows per group, nulls included)."""
        from .frame import DataFrame

        key_columns = [self._frame[name] for name in self._keys]
        if _use_vectorized(key_columns):
            gid, rep_rows, n_groups = _group_ids(key_columns)
            data = {name: _gather_key_column(self._frame[name], rep_rows)
                    for name in self._keys}
            sizes = np.bincount(gid, minlength=n_groups)
            data["count"] = Column.from_values([int(s) for s in sizes], INT64)
            return DataFrame(data)
        group_keys, index_arrays = group_indices(key_columns)
        data: dict[str, Column] = {}
        for pos, name in enumerate(self._keys):
            source = self._frame[name]
            dtype = source.dtype if source.dtype.value != "categorical" else STRING
            data[name] = Column.from_values([key[pos] for key in group_keys], dtype)
        data["count"] = Column.from_values([len(idx) for idx in index_arrays], INT64)
        return DataFrame(data)

    def __repr__(self) -> str:  # pragma: no cover
        return f"GroupBy(keys={self._keys})"
