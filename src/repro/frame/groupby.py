"""Hash-based group-by / aggregation kernel.

The group-by implementation mirrors what every library in the paper does
logically: build a hash table over the key tuples, collect row indices per
group, then compute the requested aggregates per group.  Aggregations are
vectorized per group with numpy where possible.

Supported aggregate functions: ``sum``, ``mean``, ``min``, ``max``, ``count``,
``nunique``, ``std``, ``var``, ``first``, ``last``, ``median``.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from .column import Column
from .dtypes import FLOAT64, INT64, STRING
from .errors import ColumnNotFoundError, UnsupportedOperationError

__all__ = ["AGG_FUNCTIONS", "group_indices", "aggregate", "GroupBy"]

AGG_FUNCTIONS = (
    "sum", "mean", "min", "max", "count", "nunique", "std", "var",
    "first", "last", "median",
)


def group_indices(columns: Sequence[Column]) -> tuple[list[tuple], list[np.ndarray]]:
    """Compute (key tuples, row-index arrays) for a list of key columns.

    Null keys participate as their own group (Pandas' ``dropna=False``
    semantics are not used here; nulls are kept, matching Polars/Spark).
    Groups are returned in first-appearance order to keep results stable.
    """
    if not columns:
        raise UnsupportedOperationError("group_indices requires at least one key column")
    n = len(columns[0])
    key_lists = [col.to_list() for col in columns]
    buckets: dict[tuple, list[int]] = {}
    order: list[tuple] = []
    for row in range(n):
        key = tuple(key_list[row] for key_list in key_lists)
        bucket = buckets.get(key)
        if bucket is None:
            buckets[key] = [row]
            order.append(key)
        else:
            bucket.append(row)
    return order, [np.asarray(buckets[key], dtype=np.int64) for key in order]


def _aggregate_one(column: Column, indices: np.ndarray, func: str) -> Any:
    sub = column.take(indices)
    if func == "count":
        return sub.count()
    if func == "nunique":
        return sub.nunique()
    if func == "first":
        values = sub.to_list()
        return next((v for v in values if v is not None), None)
    if func == "last":
        values = sub.to_list()
        return next((v for v in reversed(values) if v is not None), None)
    if func == "min":
        return sub.min()
    if func == "max":
        return sub.max()
    if func == "sum":
        return sub.sum()
    if func == "mean":
        return sub.mean()
    if func == "std":
        return sub.std()
    if func == "var":
        return sub.var()
    if func == "median":
        return sub.quantile(0.5)
    raise UnsupportedOperationError(f"unknown aggregate function {func!r}")


def _result_dtype(column: Column, func: str):
    if func in ("count", "nunique"):
        return INT64
    if func in ("mean", "std", "var", "median"):
        return FLOAT64
    if func in ("sum",):
        return FLOAT64 if column.dtype is FLOAT64 else INT64
    return column.dtype if column.dtype.value != "categorical" else STRING


def aggregate(
    frame: "Any",
    keys: Sequence[str],
    aggregations: Mapping[str, "str | Sequence[str]"],
) -> "Any":
    """Group ``frame`` by ``keys`` and aggregate.

    ``aggregations`` maps column name -> aggregate function (or list of
    functions).  Output columns are named ``col`` for a single function and
    ``col_func`` when several functions are requested for the same column, the
    same flattened naming the paper's Bento pipelines use.
    """
    from .frame import DataFrame  # local import to avoid a cycle

    for name in list(keys) + list(aggregations):
        if name not in frame.columns:
            raise ColumnNotFoundError(name, tuple(frame.columns))

    key_columns = [frame[name] for name in keys]
    group_keys, index_arrays = group_indices(key_columns)

    data: dict[str, Column] = {}
    for pos, name in enumerate(keys):
        key_values = [key[pos] for key in group_keys]
        source = frame[name]
        dtype = source.dtype if source.dtype.value != "categorical" else STRING
        data[name] = Column.from_values(key_values, dtype)

    for name, funcs in aggregations.items():
        func_list: Iterable[str] = [funcs] if isinstance(funcs, str) else list(funcs)
        for func in func_list:
            column = frame[name]
            out_values = [_aggregate_one(column, idx, func) for idx in index_arrays]
            out_name = name if isinstance(funcs, str) else f"{name}_{func}"
            if out_name in data:
                out_name = f"{name}_{func}"
            data[out_name] = Column.from_values(out_values, _result_dtype(column, func))

    return DataFrame(data)


class GroupBy:
    """Deferred group-by handle returned by :meth:`DataFrame.groupby`."""

    def __init__(self, frame: "Any", keys: Sequence[str]):
        self._frame = frame
        self._keys = list(keys)

    @property
    def keys(self) -> list[str]:
        return list(self._keys)

    def agg(self, aggregations: Mapping[str, "str | Sequence[str]"]) -> "Any":
        return aggregate(self._frame, self._keys, aggregations)

    def size(self) -> "Any":
        """Group sizes as a ``count`` column (rows per group, nulls included)."""
        from .frame import DataFrame

        key_columns = [self._frame[name] for name in self._keys]
        group_keys, index_arrays = group_indices(key_columns)
        data: dict[str, Column] = {}
        for pos, name in enumerate(self._keys):
            source = self._frame[name]
            dtype = source.dtype if source.dtype.value != "categorical" else STRING
            data[name] = Column.from_values([key[pos] for key in group_keys], dtype)
        data["count"] = Column.from_values([len(idx) for idx in index_arrays], INT64)
        return DataFrame(data)

    def __repr__(self) -> str:  # pragma: no cover
        return f"GroupBy(keys={self._keys})"
