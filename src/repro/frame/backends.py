"""Pluggable physical column backends.

The substrate exposes one logical :class:`~repro.frame.column.Column` API but
supports several *physical* representations.  Construction is routed through
:class:`ColumnFactory`, a registry keyed by ``(typecode, backend)`` — the same
seam torcharrow uses to dispatch between its CPU (Velox) and test backends:
the typecode is the logical dtype's string value (``"string"``, ``"int64"``,
…, or ``"*"`` as a wildcard), the backend a short device-like name.

Two backends ship in-tree:

* ``"object"`` — the reference representation: numpy ``object`` arrays for
  strings, per-element Python kernels.  Registered by
  :mod:`repro.frame.column`.
* ``"dict"`` — dictionary-encoded strings (int32 codes into a deduplicated,
  sorted value table) with vectorized kernels that evaluate string operations
  once per *distinct* value and joins/group-bys directly on codes.  Registered
  by :mod:`repro.frame.dictionary`.

The active backend is thread-local (so concurrent sweep cells with different
``backend`` coordinates never interfere) with a process-wide default
underneath.  Third-party backends plug in with::

    from repro.frame.backends import ColumnFactory

    ColumnFactory.register(("string", "arrow"), build_arrow_string_column)

and become selectable via ``use_backend("arrow")`` / ``--backend arrow`` once
registered.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Callable, Iterator

from .errors import DTypeError

__all__ = [
    "ColumnFactory",
    "OBJECT_BACKEND",
    "DICT_BACKEND",
    "active_backend",
    "known_backends",
    "set_default_backend",
    "use_backend",
    "convert_column",
    "convert_frame",
]

OBJECT_BACKEND = "object"
DICT_BACKEND = "dict"

#: Wildcard typecode: matches any logical dtype not registered explicitly.
WILDCARD = "*"


class ColumnFactory:
    """Registry mapping ``(typecode, backend)`` to a column builder.

    A builder is a callable returning a ``Column`` from the normalized storage
    parts ``Column.from_values`` produced for that dtype — string builders
    receive ``(values, validity)`` with ``values`` an object array of
    ``str | None``; wildcard builders receive ``(values, dtype, validity,
    categories)``.  Lookup falls back from the exact key to the backend's
    wildcard entry and finally to the ``"object"`` reference builders, so a
    backend only has to register the representations it actually changes.
    """

    _registry: dict[tuple[str, str], Callable[..., Any]] = {}

    @classmethod
    def register(cls, key: tuple[str, str], builder: Callable[..., Any]) -> None:
        if key in cls._registry:
            raise DTypeError(f"column builder already registered for {key!r}")
        cls._registry[key] = builder

    @classmethod
    def unregister(cls, key: tuple[str, str]) -> None:
        cls._registry.pop(key, None)

    @classmethod
    def lookup(cls, typecode: str, backend: str) -> Callable[..., Any]:
        registry = cls._registry
        for key in (
            (typecode, backend),
            (WILDCARD, backend),
            (typecode, OBJECT_BACKEND),
            (WILDCARD, OBJECT_BACKEND),
        ):
            builder = registry.get(key)
            if builder is not None:
                return builder
        raise DTypeError(f"no column builder for typecode {typecode!r} on backend {backend!r}")

    @classmethod
    def build(cls, typecode: str, backend: str, *args: Any, **kwargs: Any) -> Any:
        return cls.lookup(typecode, backend)(*args, **kwargs)

    @classmethod
    def backends(cls) -> list[str]:
        return sorted({backend for _, backend in cls._registry})


_local = threading.local()
_default_backend = OBJECT_BACKEND


def known_backends() -> list[str]:
    """Names of every registered backend (``["dict", "object"]`` in-tree)."""
    return ColumnFactory.backends()


def _check_backend(name: str) -> str:
    if name not in ColumnFactory.backends():
        raise DTypeError(
            f"unknown column backend {name!r}; registered backends: {known_backends()}"
        )
    return name


def active_backend() -> str:
    """The backend new columns are built on in the current thread."""
    stack = getattr(_local, "stack", None)
    if stack:
        return stack[-1]
    return _default_backend


def set_default_backend(name: str) -> str:
    """Set the process-wide default backend; returns the previous default."""
    global _default_backend
    previous = _default_backend
    _default_backend = _check_backend(name)
    return previous


@contextmanager
def use_backend(name: str) -> Iterator[str]:
    """Thread-locally select the column backend for the enclosed block."""
    name = _check_backend(name)
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    stack.append(name)
    try:
        yield name
    finally:
        stack.pop()


# --------------------------------------------------------------------------- #
# conversion between backends
# --------------------------------------------------------------------------- #
def convert_column(column: Any, backend: str) -> Any:
    """Re-represent ``column`` on ``backend`` (no-op when already there)."""
    from .column import Column
    from .dictionary import DictStringColumn
    from .dtypes import STRING

    _check_backend(backend)
    if backend == DICT_BACKEND:
        if column.dtype is STRING and not isinstance(column, DictStringColumn):
            return DictStringColumn.from_strings(column.to_string_array(),
                                                 column.validity.copy())
        return column
    if isinstance(column, DictStringColumn):
        return Column(column.to_string_array(), STRING, column.validity.copy())
    return column


def convert_frame(frame: Any, backend: str) -> Any:
    """Re-represent every column of ``frame`` on ``backend``."""
    from .frame import DataFrame

    converted = {name: convert_column(frame[name], backend) for name in frame.columns}
    if all(converted[name] is frame[name] for name in frame.columns):
        return frame
    return DataFrame(converted)


def column_backend(column: Any) -> str:
    """Backend a column instance is physically represented on."""
    return getattr(type(column), "backend", OBJECT_BACKEND)
