"""Zero-copy frame transport over ``multiprocessing.shared_memory``.

The sweep's process workers used to receive a pickled copy of the physical
frame inside *every* cell payload — serialization dominated the sweep and the
"parallel" path ran slower than sequential.  This module serializes each
distinct physical frame **once** into a single shared-memory segment (one
buffer per column component, with a picklable manifest describing offsets,
dtypes and shapes) so any number of workers attach to the same bytes instead
of unpickling their own copy.

Layout: numeric storage (``int64``/``float64``/``bool`` values and the boolean
validity masks) is copied verbatim and re-attached as **zero-copy read-only
numpy views** over the segment.  String-typed object arrays (``STRING`` values
and ``CATEGORICAL`` category tables) are encoded as a UTF-8 data buffer plus an
``int64`` offsets array; attaching decodes them back into object arrays (one
unavoidable copy, paid once per worker per frame — not once per cell).

Ownership: the process that calls :func:`export_frame` owns the segment and
must eventually ``close()`` + ``unlink()`` it; :class:`SharedFrameStore` is the
reference-counting registry the sweep scheduler uses for that (segments are
unlinked as soon as the last batch referencing them completes, and
unconditionally when the sweep ends — including on exception or Ctrl-C).
Attachers must *not* unlink; :func:`attach_frame` unregisters the attached
segment from this process's ``resource_tracker`` so a worker exiting cannot
destroy a segment the parent still owns (CPython < 3.13 tracks attached
segments as if they were owned).
"""

from __future__ import annotations

import os
import secrets
import threading
from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from .column import Column
from .dictionary import DictStringColumn
from .dtypes import CATEGORICAL, STRING, parse_dtype
from .frame import DataFrame

__all__ = ["FrameManifest", "SharedFrameStore", "attach_frame", "export_frame",
           "SEGMENT_PREFIX"]

#: Prefix of every segment this module creates (``/dev/shm/<prefix>…`` on
#: Linux) — tests assert no segment with this prefix survives a sweep.
SEGMENT_PREFIX = "repro-frame-"

#: Segments created by this process (or inherited over ``fork``, in which case
#: the child shares the parent's resource-tracker daemon).  Attaching to one
#: of these must not unregister it — the tracker entry belongs to the owner.
_OWNED: set[str] = set()


@dataclass(frozen=True)
class _Buffer:
    """One contiguous region of the segment holding a numpy array."""

    offset: int
    count: int
    dtype: str  # numpy dtype string, e.g. "int64", "bool", "uint8"


@dataclass(frozen=True)
class _ColumnSpec:
    """How to rebuild one :class:`Column` from the segment."""

    name: str
    dtype: str  # logical dtype value ("int64", "string", …)
    values: _Buffer
    validity: _Buffer
    # STRING values / CATEGORICAL categories: (offsets, utf8 data, validity)
    strings: "tuple[_Buffer, _Buffer, _Buffer] | None" = None
    categories: "tuple[_Buffer, _Buffer, _Buffer] | None" = None
    # physical backend of the column ("dict" STRING columns ship their int32
    # codes in ``values`` plus the value table in ``categories`` — the table
    # is deduplicated, so the segment shrinks with the distinct count)
    backend: str = "object"


@dataclass(frozen=True)
class FrameManifest:
    """Picklable description of one exported frame (ships inside batches)."""

    segment: str
    size: int
    rows: int
    columns: tuple[_ColumnSpec, ...] = field(default_factory=tuple)


# --------------------------------------------------------------------------- #
# export
# --------------------------------------------------------------------------- #
def _encode_strings(values: np.ndarray) -> tuple[bytes, np.ndarray, np.ndarray]:
    """Object array of ``str | None`` → (utf8 blob, int64 offsets, validity)."""
    present = np.array([v is not None for v in values], dtype=bool)
    pieces = [v.encode("utf-8") if ok else b""
              for v, ok in zip(values.tolist(), present.tolist())]
    offsets = np.zeros(len(pieces) + 1, dtype=np.int64)
    np.cumsum([len(p) for p in pieces], out=offsets[1:])
    return b"".join(pieces), offsets, present


def _decode_strings(data: np.ndarray, offsets: np.ndarray,
                    present: np.ndarray) -> np.ndarray:
    blob = data.tobytes()
    out = np.empty(len(offsets) - 1, dtype=object)
    starts, ends = offsets[:-1].tolist(), offsets[1:].tolist()
    for i, ok in enumerate(present.tolist()):
        out[i] = blob[starts[i]:ends[i]].decode("utf-8") if ok else None
    return out


class _SegmentWriter:
    """Accumulates arrays, then copies them into one shared segment."""

    def __init__(self) -> None:
        self._arrays: list[np.ndarray] = []
        self._offset = 0

    def add(self, array: np.ndarray) -> _Buffer:
        array = np.ascontiguousarray(array)
        # align every buffer to 16 bytes so attached views are always aligned
        self._offset = (self._offset + 15) & ~15
        buffer = _Buffer(self._offset, len(array), str(array.dtype))
        self._arrays.append(array)
        self._offset += array.nbytes
        return buffer

    def add_strings(self, values: np.ndarray) -> tuple[_Buffer, _Buffer, _Buffer]:
        blob, offsets, present = _encode_strings(values)
        data = np.frombuffer(blob, dtype=np.uint8) if blob else np.empty(0, np.uint8)
        return self.add(offsets), self.add(data), self.add(present)

    def write(self, name: str) -> shared_memory.SharedMemory:
        size = max(1, self._offset)
        shm = shared_memory.SharedMemory(create=True, size=size, name=name)
        offset = 0
        for array in self._arrays:
            offset = (offset + 15) & ~15
            view = np.ndarray(array.shape, dtype=array.dtype,
                              buffer=shm.buf, offset=offset)
            view[:] = array
            offset += array.nbytes
        return shm


def export_frame(frame: DataFrame,
                 name: str | None = None) -> tuple[shared_memory.SharedMemory, FrameManifest]:
    """Serialize a frame into one owned shared-memory segment.

    Returns the segment (caller owns ``close()``/``unlink()``) and the
    picklable manifest any process can :func:`attach_frame` from.
    """
    name = name or f"{SEGMENT_PREFIX}{os.getpid()}-{secrets.token_hex(4)}"
    writer = _SegmentWriter()
    specs: list[_ColumnSpec] = []
    for column_name in frame.columns:
        column = frame[column_name]
        validity = writer.add(np.asarray(column.validity, dtype=bool))
        if isinstance(column, DictStringColumn):
            # dictionary columns ship codes + the deduplicated value table —
            # far smaller than the decoded strings for low-cardinality data
            values = writer.add(np.asarray(column.values))
            categories = writer.add_strings(column.categories)
            specs.append(_ColumnSpec(column_name, column.dtype.value, values,
                                     validity, categories=categories,
                                     backend=column.backend))
            continue
        if column.dtype is STRING:
            strings = writer.add_strings(column.values)
            values = strings[0]  # placeholder; rebuilt from the string buffers
            specs.append(_ColumnSpec(column_name, column.dtype.value, values,
                                     validity, strings=strings))
            continue
        values = writer.add(np.asarray(column.values))
        categories = (writer.add_strings(column.categories)
                      if column.dtype is CATEGORICAL else None)
        specs.append(_ColumnSpec(column_name, column.dtype.value, values,
                                 validity, categories=categories))
    shm = writer.write(name)
    _OWNED.add(name)
    manifest = FrameManifest(segment=name, size=shm.size, rows=frame.num_rows,
                             columns=tuple(specs))
    return shm, manifest


# --------------------------------------------------------------------------- #
# attach
# --------------------------------------------------------------------------- #
def _view(shm: shared_memory.SharedMemory, buffer: _Buffer) -> np.ndarray:
    array = np.ndarray((buffer.count,), dtype=np.dtype(buffer.dtype),
                       buffer=shm.buf, offset=buffer.offset)
    array.flags.writeable = False  # the frame is shared; mutation is a bug
    return array


def _decode_string_array(shm: shared_memory.SharedMemory,
                         buffers: tuple[_Buffer, _Buffer, _Buffer]) -> np.ndarray:
    offsets, data, present = buffers
    return _decode_strings(_view(shm, data), _view(shm, offsets),
                           _view(shm, present))


def attach_frame(manifest: FrameManifest,
                 shm: shared_memory.SharedMemory | None = None
                 ) -> tuple[DataFrame, shared_memory.SharedMemory]:
    """Rebuild a frame from a manifest, attaching to the segment if needed.

    Numeric buffers become read-only zero-copy views over the segment; the
    returned ``SharedMemory`` must stay alive as long as the frame is used.
    The attachment is unregistered from this process's ``resource_tracker``
    so that a worker's exit never unlinks a segment the exporter still owns.
    """
    if shm is None:
        shm = shared_memory.SharedMemory(name=manifest.segment)
        if manifest.segment not in _OWNED:
            try:  # the exporter owns cleanup; see module docstring
                resource_tracker.unregister(shm._name, "shared_memory")  # noqa: SLF001
            except Exception:  # pragma: no cover - tracker API is best-effort
                pass
    data: dict[str, Column] = {}
    for spec in manifest.columns:
        dtype = parse_dtype(spec.dtype)
        validity = _view(shm, spec.validity)
        if getattr(spec, "backend", "object") == "dict":
            codes = _view(shm, spec.values)  # zero-copy int32 code view
            categories = _decode_string_array(shm, spec.categories)
            data[spec.name] = DictStringColumn(codes, dtype, validity, categories)
            continue
        if spec.strings is not None:
            values = _decode_string_array(shm, spec.strings)
            data[spec.name] = Column(values, dtype, validity)
            continue
        values = _view(shm, spec.values)
        categories = (_decode_string_array(shm, spec.categories)
                      if spec.categories is not None else None)
        data[spec.name] = Column(values, dtype, validity, categories)
    return DataFrame(data), shm


# --------------------------------------------------------------------------- #
# the exporter-side registry
# --------------------------------------------------------------------------- #
class SharedFrameStore:
    """Reference-counted registry of the segments one sweep exported.

    ``export()`` serializes a frame once (keyed by object identity) and
    returns its manifest; ``retain()``/``release()`` track how many dispatched
    batches still reference each segment so memory is reclaimed as soon as the
    last batch using a frame completes; ``close()`` unlinks everything that is
    left — the scheduler calls it in a ``finally`` so segments never outlive
    the sweep, even on exception or Ctrl-C.
    """

    def __init__(self) -> None:
        self._segments: dict[str, shared_memory.SharedMemory] = {}
        self._manifests: dict[int, FrameManifest] = {}
        self._frames: dict[int, DataFrame] = {}  # keeps ids stable
        self._refs: dict[str, int] = {}
        self._lock = threading.Lock()

    def export(self, frame: DataFrame) -> FrameManifest:
        with self._lock:
            manifest = self._manifests.get(id(frame))
            if manifest is None:
                shm, manifest = export_frame(frame)
                self._segments[manifest.segment] = shm
                self._manifests[id(frame)] = manifest
                self._frames[id(frame)] = frame
                self._refs[manifest.segment] = 0
            return manifest

    def retain(self, segment: str) -> None:
        with self._lock:
            self._refs[segment] = self._refs.get(segment, 0) + 1

    def release(self, segment: str) -> None:
        """Drop one reference; the segment is unlinked when none remain."""
        with self._lock:
            count = self._refs.get(segment)
            if count is None:
                return
            count -= 1
            self._refs[segment] = count
            if count > 0:
                return
            shm = self._segments.pop(segment, None)
            del self._refs[segment]
        if shm is not None:
            _destroy(shm)

    @property
    def segment_names(self) -> list[str]:
        with self._lock:
            return sorted(self._segments)

    def close(self) -> None:
        """Unlink every remaining segment (idempotent)."""
        with self._lock:
            segments = list(self._segments.values())
            self._segments.clear()
            self._manifests.clear()
            self._frames.clear()
            self._refs.clear()
        for shm in segments:
            _destroy(shm)

    def __enter__(self) -> "SharedFrameStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _destroy(shm: shared_memory.SharedMemory) -> None:
    _OWNED.discard(getattr(shm, "name", None))
    try:
        shm.close()
    except Exception:  # pragma: no cover
        pass
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - already gone
        pass
