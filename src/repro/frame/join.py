"""Hash-join kernel for the substrate.

Implements inner / left / right / outer / semi / anti equi-joins on one or
more key columns.  The build side is always the right frame (a hash table
from key tuple to row indices), the probe side the left frame — the classic
strategy used by Polars, CuDF and Spark for equi-joins.

Column-name collisions on non-key columns are resolved with a ``_right``
suffix, matching the Pandas convention Bento relies on.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .column import Column
from .errors import JoinError

__all__ = ["hash_join"]

_VALID_HOW = ("inner", "left", "right", "outer", "semi", "anti")


def _key_tuples(frame, keys: Sequence[str]) -> list[tuple]:
    lists = [frame[k].to_list() for k in keys]
    return list(zip(*lists)) if lists else []


def _build_table(keys: list[tuple]) -> dict[tuple, list[int]]:
    table: dict[tuple, list[int]] = {}
    for idx, key in enumerate(keys):
        table.setdefault(key, []).append(idx)
    return table


def _gather_column(column: Column, indices: list[int | None]) -> Column:
    """Take with ``None`` producing a null row (for outer joins)."""
    values = column.to_list()
    out = [values[i] if i is not None else None for i in indices]
    dtype = column.dtype if column.dtype.value != "categorical" else None
    return Column.from_values(out, dtype)


def hash_join(
    left,
    right,
    left_on: Sequence[str],
    right_on: Sequence[str] | None = None,
    how: str = "inner",
    suffix: str = "_right",
):
    """Join two DataFrames on equality of key columns.

    Parameters mirror the ``join`` preparator: ``left_on``/``right_on`` name
    the key columns on each side, ``how`` selects the join type and ``suffix``
    disambiguates clashing non-key column names from the right side.
    """
    from .frame import DataFrame

    if how not in _VALID_HOW:
        raise JoinError(f"unknown join type {how!r}; expected one of {_VALID_HOW}")
    right_on = list(right_on) if right_on is not None else list(left_on)
    left_on = list(left_on)
    if len(left_on) != len(right_on):
        raise JoinError("left_on and right_on must have the same number of key columns")
    for name in left_on:
        if name not in left.columns:
            raise JoinError(f"left join key {name!r} not in left frame")
    for name in right_on:
        if name not in right.columns:
            raise JoinError(f"right join key {name!r} not in right frame")

    left_keys = _key_tuples(left, left_on)
    right_keys = _key_tuples(right, right_on)
    table = _build_table(right_keys)

    left_idx: list[int | None] = []
    right_idx: list[int | None] = []

    if how in ("inner", "left", "outer"):
        matched_right: set[int] = set()
        for i, key in enumerate(left_keys):
            matches = table.get(key) if None not in key else None
            if matches:
                for j in matches:
                    left_idx.append(i)
                    right_idx.append(j)
                    matched_right.add(j)
            elif how in ("left", "outer"):
                left_idx.append(i)
                right_idx.append(None)
        if how == "outer":
            for j in range(len(right_keys)):
                if j not in matched_right:
                    left_idx.append(None)
                    right_idx.append(j)
    elif how == "right":
        # implemented as a left join with sides swapped, then reordered
        swapped = hash_join(right, left, right_on, left_on, how="left", suffix=suffix)
        # reorder columns: left columns first, then right
        return swapped
    elif how in ("semi", "anti"):
        for i, key in enumerate(left_keys):
            has_match = None not in key and key in table
            if (how == "semi") == has_match:
                left_idx.append(i)
                right_idx.append(None)

    data: dict[str, Column] = {}
    for name in left.columns:
        data[name] = _gather_column(left[name], left_idx)

    if how not in ("semi", "anti"):
        key_map = dict(zip(right_on, left_on))
        for name in right.columns:
            if name in key_map and key_map[name] == name:
                # identical key column name already provided by the left side
                continue
            out_name = name
            if out_name in data:
                out_name = f"{name}{suffix}"
            if out_name in data:
                raise JoinError(f"cannot disambiguate output column {name!r}")
            data[out_name] = _gather_column(right[name], right_idx)

    return DataFrame(data)
