"""Hash-join kernel for the substrate.

Implements inner / left / right / outer / semi / anti equi-joins on one or
more key columns.  The build side is always the right frame (a hash table
from key tuple to row indices), the probe side the left frame — the classic
strategy used by Polars, CuDF and Spark for equi-joins.

Two physical kernels implement the same join semantics:

* the **reference** kernel (``"object"`` backend): a Python dict from key
  tuples to row lists, probed row by row — simple, and the behavioural
  oracle the property tests compare against;
* the **vectorized** kernel (``"dict"`` backend, or whenever a key column is
  dictionary-encoded): each key-column pair is factorized to shared int64
  codes (dictionary columns merge their sorted value tables with a
  ``searchsorted`` instead of re-hashing the strings), multi-column keys fold
  with mixed-radix combination + compression, and the probe is a stable
  argsort of the build side plus two ``searchsorted`` range lookups — no
  per-row Python at all.  Row ordering reproduces the reference kernel
  exactly: probe rows in left order, matches in right-row order, unmatched
  right rows appended ascending for outer joins.

Column-name collisions on non-key columns are resolved with a ``_right``
suffix, matching the Pandas convention Bento relies on.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .backends import DICT_BACKEND, active_backend
from .column import Column
from .dictionary import DictStringColumn
from .dtypes import BOOL, CATEGORICAL, FLOAT64, STRING
from .errors import JoinError

__all__ = ["hash_join"]

_VALID_HOW = ("inner", "left", "right", "outer", "semi", "anti")


def _key_tuples(frame, keys: Sequence[str]) -> list[tuple]:
    lists = [frame[k].to_list() for k in keys]
    return list(zip(*lists)) if lists else []


def _build_table(keys: list[tuple]) -> dict[tuple, list[int]]:
    table: dict[tuple, list[int]] = {}
    for idx, key in enumerate(keys):
        table.setdefault(key, []).append(idx)
    return table


def _gather_column(column: Column, indices: "Sequence[int | None]") -> Column:
    """Take with ``None`` producing a null row (for outer joins)."""
    values = column.to_list()
    out = [values[i] if i is not None else None for i in indices]
    dtype = column.dtype if column.dtype.value != "categorical" else None
    return Column.from_values(out, dtype)


# --------------------------------------------------------------------------- #
# vectorized kernel
# --------------------------------------------------------------------------- #
def _pair_codes(lcol: Column, rcol: Column) -> tuple[np.ndarray, np.ndarray]:
    """Factorize one key-column pair into shared int64 codes (``-1`` = null).

    Equal values on the two sides receive equal codes; null keys never match
    anything (the reference kernel's ``None not in key`` rule).
    """
    lvalid = np.asarray(lcol.validity, dtype=bool)
    rvalid = np.asarray(rcol.validity, dtype=bool)
    lcodes = np.full(len(lcol), -1, dtype=np.int64)
    rcodes = np.full(len(rcol), -1, dtype=np.int64)
    if isinstance(lcol, DictStringColumn) and isinstance(rcol, DictStringColumn):
        # merge the two sorted value tables instead of re-hashing the strings
        merged = np.unique(np.concatenate([lcol.categories, rcol.categories]))
        if len(lcol.categories):
            lmap = np.searchsorted(merged, lcol.categories).astype(np.int64)
            lcodes[lvalid] = lmap[lcol.values[lvalid]]
        if len(rcol.categories):
            rmap = np.searchsorted(merged, rcol.categories).astype(np.int64)
            rcodes[rvalid] = rmap[rcol.values[rvalid]]
        return lcodes, rcodes
    if lcol.dtype in (STRING, CATEGORICAL) or rcol.dtype in (STRING, CATEGORICAL):
        lvals = lcol.to_string_array()[lvalid]
        rvals = rcol.to_string_array()[rvalid]
    else:
        lvals, rvals = lcol.values, rcol.values
        if lvals.dtype != rvals.dtype:
            # cross-storage numeric keys (int vs float/bool) compare by value
            lvals = lvals.astype(np.float64)
            rvals = rvals.astype(np.float64)
        lvals, rvals = lvals[lvalid], rvals[rvalid]
    pool = np.concatenate([lvals, rvals])
    if pool.size:
        _, inverse = np.unique(pool, return_inverse=True)
        inverse = inverse.astype(np.int64)
        nl = int(lvalid.sum())
        lcodes[lvalid] = inverse[:nl]
        rcodes[rvalid] = inverse[nl:]
    return lcodes, rcodes


def _fold_codes(left, right, left_on: Sequence[str], right_on: Sequence[str]
                ) -> tuple[np.ndarray, np.ndarray]:
    """Combine per-column code pairs into one int64 key per row."""
    lkey, rkey = _pair_codes(left[left_on[0]], right[right_on[0]])
    for lname, rname in zip(left_on[1:], right_on[1:]):
        lc, rc = _pair_codes(left[lname], right[rname])
        lnull = (lkey < 0) | (lc < 0)
        rnull = (rkey < 0) | (rc < 0)
        card = max(int(lc.max(initial=-1)), int(rc.max(initial=-1))) + 1
        card = max(card, 1)
        lkey = lkey * card + np.where(lc < 0, 0, lc)
        rkey = rkey * card + np.where(rc < 0, 0, rc)
        # compress after every fold so magnitudes stay < n and never overflow
        pool = np.concatenate([lkey[~lnull], rkey[~rnull]])
        lnew = np.full(len(lkey), -1, dtype=np.int64)
        rnew = np.full(len(rkey), -1, dtype=np.int64)
        if pool.size:
            _, inverse = np.unique(pool, return_inverse=True)
            inverse = inverse.astype(np.int64)
            nl = int((~lnull).sum())
            lnew[~lnull] = inverse[:nl]
            rnew[~rnull] = inverse[nl:]
        lkey, rkey = lnew, rnew
    return lkey, rkey


def _probe_indices(lkey: np.ndarray, rkey: np.ndarray, how: str
                   ) -> tuple[np.ndarray, np.ndarray]:
    """Output row indices (``-1`` = null row) reproducing reference ordering."""
    nl, nr = len(lkey), len(rkey)
    order = np.argsort(rkey, kind="stable")
    sorted_keys = rkey[order]
    starts = np.searchsorted(sorted_keys, lkey, side="left")
    ends = np.searchsorted(sorted_keys, lkey, side="right")
    lvalid = lkey >= 0  # null left keys probe nothing (and never hit right nulls)
    counts = np.where(lvalid, ends - starts, 0)
    matched = counts > 0
    if how in ("semi", "anti"):
        keep = matched if how == "semi" else ~matched
        left_idx = np.flatnonzero(keep).astype(np.int64)
        return left_idx, np.full(len(left_idx), -1, dtype=np.int64)
    emit = counts.astype(np.int64)
    if how in ("left", "outer"):
        emit = np.where(matched, emit, 1)
    total = int(emit.sum())
    left_idx = np.repeat(np.arange(nl, dtype=np.int64), emit)
    if nr == 0:
        right_idx = np.full(total, -1, dtype=np.int64)
    else:
        group_start = np.cumsum(emit) - emit
        offsets = np.arange(total, dtype=np.int64) - np.repeat(group_start, emit)
        base = np.repeat(np.where(matched, starts, 0), emit) + offsets
        right_idx = order[base].astype(np.int64)
        right_idx[np.repeat(~matched, emit)] = -1
    if how == "outer":
        seen = np.zeros(nr, dtype=bool)
        seen[right_idx[right_idx >= 0]] = True
        extra = np.flatnonzero(~seen).astype(np.int64)
        left_idx = np.concatenate([left_idx, np.full(len(extra), -1, dtype=np.int64)])
        right_idx = np.concatenate([right_idx, extra])
    return left_idx, right_idx


def _take_with_nulls(column: Column, indices: np.ndarray) -> Column:
    """Vectorized :func:`_gather_column`: ``-1`` indices produce null rows."""
    indices = np.asarray(indices, dtype=np.int64)
    missing = indices < 0
    if len(column) == 0:
        # gathering from an empty side: every index is -1 (or there are none)
        dtype = column.dtype if column.dtype is not CATEGORICAL else FLOAT64
        return Column.full_null(len(indices), dtype)
    safe = np.where(missing, 0, indices)
    validity = np.asarray(column.validity, dtype=bool)[safe] & ~missing
    if column.dtype is CATEGORICAL:
        # the reference kernel re-infers gathered categoricals (STRING, or
        # FLOAT64 when every gathered row is null)
        strings = column.to_string_array()[safe]
        strings[~validity] = None
        return Column.from_values(strings, None)
    if isinstance(column, DictStringColumn):
        codes = np.where(validity, column.values[safe], -1).astype(np.int32)
        return DictStringColumn(codes, STRING, validity, column.categories.copy())
    values = column.values[safe].copy()
    if column.dtype is STRING:
        values[~validity] = None
        return Column(values, STRING, validity)
    values[~validity] = False if column.dtype is BOOL else 0
    return Column(values, column.dtype, validity)


def _use_vectorized(left, right, left_on: Sequence[str], right_on: Sequence[str]) -> bool:
    if active_backend() == DICT_BACKEND:
        return True
    return any(isinstance(left[k], DictStringColumn) for k in left_on) or any(
        isinstance(right[k], DictStringColumn) for k in right_on)


def hash_join(
    left,
    right,
    left_on: Sequence[str],
    right_on: Sequence[str] | None = None,
    how: str = "inner",
    suffix: str = "_right",
):
    """Join two DataFrames on equality of key columns.

    Parameters mirror the ``join`` preparator: ``left_on``/``right_on`` name
    the key columns on each side, ``how`` selects the join type and ``suffix``
    disambiguates clashing non-key column names from the right side.
    """
    from .frame import DataFrame

    if how not in _VALID_HOW:
        raise JoinError(f"unknown join type {how!r}; expected one of {_VALID_HOW}")
    right_on = list(right_on) if right_on is not None else list(left_on)
    left_on = list(left_on)
    if len(left_on) != len(right_on):
        raise JoinError("left_on and right_on must have the same number of key columns")
    for name in left_on:
        if name not in left.columns:
            raise JoinError(f"left join key {name!r} not in left frame")
    for name in right_on:
        if name not in right.columns:
            raise JoinError(f"right join key {name!r} not in right frame")

    if how == "right":
        # implemented as a left join with sides swapped, then reordered
        return hash_join(right, left, right_on, left_on, how="left", suffix=suffix)

    gather: Callable[[Column, "Sequence[int | None] | np.ndarray"], Column]
    if _use_vectorized(left, right, left_on, right_on):
        lkey, rkey = _fold_codes(left, right, left_on, right_on)
        left_idx, right_idx = _probe_indices(lkey, rkey, how)
        gather = _take_with_nulls
    else:
        left_keys = _key_tuples(left, left_on)
        right_keys = _key_tuples(right, right_on)
        table = _build_table(right_keys)

        left_idx = []
        right_idx = []
        if how in ("inner", "left", "outer"):
            matched_right: set[int] = set()
            for i, key in enumerate(left_keys):
                matches = table.get(key) if None not in key else None
                if matches:
                    for j in matches:
                        left_idx.append(i)
                        right_idx.append(j)
                        matched_right.add(j)
                elif how in ("left", "outer"):
                    left_idx.append(i)
                    right_idx.append(None)
            if how == "outer":
                for j in range(len(right_keys)):
                    if j not in matched_right:
                        left_idx.append(None)
                        right_idx.append(j)
        else:  # semi / anti
            for i, key in enumerate(left_keys):
                has_match = None not in key and key in table
                if (how == "semi") == has_match:
                    left_idx.append(i)
                    right_idx.append(None)
        gather = _gather_column

    data: dict[str, Column] = {}
    for name in left.columns:
        data[name] = gather(left[name], left_idx)

    if how not in ("semi", "anti"):
        key_map = dict(zip(right_on, left_on))
        for name in right.columns:
            if name in key_map and key_map[name] == name:
                # identical key column name already provided by the left side
                continue
            out_name = name
            if out_name in data:
                out_name = f"{name}{suffix}"
            if out_name in data:
                raise JoinError(f"cannot disambiguate output column {name!r}")
            data[out_name] = gather(right[name], right_idx)

    return DataFrame(data)
