"""Expression AST evaluated against a DataFrame.

Expressions are the building block of the lazy layer (:mod:`repro.plan`) and
of the ``calccol`` / ``query`` preparators.  They form a small algebra:

* :func:`col` — reference a column by name;
* :func:`lit` — a scalar literal;
* arithmetic (``+ - * /``), comparisons (``== != < <= > >=``), boolean
  combinators (``&``, ``|``, ``~``), membership (:meth:`Expression.is_in`),
  null checks, string helpers (:meth:`Expression.str_contains`,
  :meth:`Expression.str_like`) and date component extraction.

An expression knows which columns it references (:meth:`Expression.columns`),
which is what enables projection pushdown in the optimizer, and can be
evaluated against a frame to produce a :class:`~repro.frame.column.Column`.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

import numpy as np

from . import strings as string_ops
from .column import Column
from .datetimes import extract_component
from .dtypes import BOOL
from .errors import ExpressionError

__all__ = ["Expression", "col", "lit"]


class Expression:
    """Base class of all expression nodes."""

    def evaluate(self, frame) -> Column:
        raise NotImplementedError

    def columns(self) -> set[str]:
        """Names of the columns this expression reads."""
        raise NotImplementedError

    def describe(self) -> str:
        """Compact textual form used in plan explanations."""
        raise NotImplementedError

    # -- operator sugar -------------------------------------------------- #
    def _wrap(self, other: Any) -> "Expression":
        return other if isinstance(other, Expression) else Literal(other)

    def __add__(self, other): return BinaryOp("+", self, self._wrap(other))
    def __radd__(self, other): return BinaryOp("+", self._wrap(other), self)
    def __sub__(self, other): return BinaryOp("-", self, self._wrap(other))
    def __rsub__(self, other): return BinaryOp("-", self._wrap(other), self)
    def __mul__(self, other): return BinaryOp("*", self, self._wrap(other))
    def __rmul__(self, other): return BinaryOp("*", self._wrap(other), self)
    def __truediv__(self, other): return BinaryOp("/", self, self._wrap(other))
    def __rtruediv__(self, other): return BinaryOp("/", self._wrap(other), self)
    def __eq__(self, other): return BinaryOp("==", self, self._wrap(other))  # type: ignore[override]
    def __ne__(self, other): return BinaryOp("!=", self, self._wrap(other))  # type: ignore[override]
    def __lt__(self, other): return BinaryOp("<", self, self._wrap(other))
    def __le__(self, other): return BinaryOp("<=", self, self._wrap(other))
    def __gt__(self, other): return BinaryOp(">", self, self._wrap(other))
    def __ge__(self, other): return BinaryOp(">=", self, self._wrap(other))
    def __and__(self, other): return BinaryOp("&", self, self._wrap(other))
    def __or__(self, other): return BinaryOp("|", self, self._wrap(other))
    def __invert__(self): return UnaryOp("not", self)
    def __neg__(self): return UnaryOp("neg", self)

    __hash__ = None  # type: ignore[assignment]

    # -- named helpers ---------------------------------------------------- #
    def is_null(self) -> "Expression":
        return UnaryOp("is_null", self)

    def not_null(self) -> "Expression":
        return UnaryOp("not_null", self)

    def is_in(self, values: Iterable[Any]) -> "Expression":
        return IsIn(self, list(values))

    def str_contains(self, pattern: str, regex: bool = True) -> "Expression":
        return StringPredicate(self, "contains", pattern, regex=regex)

    def str_like(self, pattern: str) -> "Expression":
        return StringPredicate(self, "like", pattern)

    def str_startswith(self, prefix: str) -> "Expression":
        return StringPredicate(self, "startswith", prefix)

    def str_endswith(self, suffix: str) -> "Expression":
        return StringPredicate(self, "endswith", suffix)

    def dt_component(self, component: str) -> "Expression":
        return DateComponent(self, component)

    def between(self, low: Any, high: Any) -> "Expression":
        return (self >= low) & (self <= high)

    def apply(self, func: Callable[[Any], Any], dtype=None) -> "Expression":
        return Apply(self, func, dtype)

    def alias(self, name: str) -> "Aliased":
        return Aliased(self, name)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Expression<{self.describe()}>"


class Aliased(Expression):
    """An expression carrying an output column name."""

    def __init__(self, inner: Expression, name: str):
        self.inner = inner
        self.name = name

    def evaluate(self, frame) -> Column:
        return self.inner.evaluate(frame)

    def columns(self) -> set[str]:
        return self.inner.columns()

    def describe(self) -> str:
        return f"{self.inner.describe()} AS {self.name}"


class ColumnRef(Expression):
    """Reference to a frame column by name."""

    def __init__(self, name: str):
        self.name = name

    def evaluate(self, frame) -> Column:
        return frame[self.name]

    def columns(self) -> set[str]:
        return {self.name}

    def describe(self) -> str:
        return f"col({self.name})"


class Literal(Expression):
    """A scalar constant broadcast to the frame length."""

    def __init__(self, value: Any):
        self.value = value

    def evaluate(self, frame) -> Column:
        return Column.from_values([self.value] * frame.num_rows)

    def columns(self) -> set[str]:
        return set()

    def describe(self) -> str:
        return repr(self.value)


_BINARY_COLUMN_OPS = {
    "+": "add", "-": "sub", "*": "mul", "/": "div",
    "==": "eq", "!=": "ne", "<": "lt", "<=": "le", ">": "gt", ">=": "ge",
    "&": "logical_and", "|": "logical_or",
}


class BinaryOp(Expression):
    """Arithmetic, comparison or boolean combination of two expressions."""

    def __init__(self, op: str, left: Expression, right: Expression):
        if op not in _BINARY_COLUMN_OPS:
            raise ExpressionError(f"unknown binary operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, frame) -> Column:
        left = self.left.evaluate(frame)
        # Scalar right-hand sides skip materializing a literal column.
        if isinstance(self.right, Literal) and self.op not in ("&", "|"):
            right: Any = self.right.value
        else:
            right = self.right.evaluate(frame)
        method = getattr(left, _BINARY_COLUMN_OPS[self.op])
        return method(right)

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()

    def describe(self) -> str:
        return f"({self.left.describe()} {self.op} {self.right.describe()})"


class UnaryOp(Expression):
    """Negation, boolean NOT and null checks."""

    def __init__(self, op: str, operand: Expression):
        if op not in ("neg", "not", "is_null", "not_null"):
            raise ExpressionError(f"unknown unary operator {op!r}")
        self.op = op
        self.operand = operand

    def evaluate(self, frame) -> Column:
        value = self.operand.evaluate(frame)
        if self.op == "neg":
            return value.neg()
        if self.op == "not":
            return value.logical_not()
        if self.op == "is_null":
            return value.is_null()
        return value.not_null()

    def columns(self) -> set[str]:
        return self.operand.columns()

    def describe(self) -> str:
        return f"{self.op}({self.operand.describe()})"


class IsIn(Expression):
    """Membership test against a fixed set of values."""

    def __init__(self, operand: Expression, values: Sequence[Any]):
        self.operand = operand
        self.values = list(values)

    def evaluate(self, frame) -> Column:
        return self.operand.evaluate(frame).is_in(self.values)

    def columns(self) -> set[str]:
        return self.operand.columns()

    def describe(self) -> str:
        preview = ", ".join(repr(v) for v in self.values[:4])
        return f"{self.operand.describe()} IN [{preview}{', ...' if len(self.values) > 4 else ''}]"


class StringPredicate(Expression):
    """String pattern predicates: contains / like / startswith / endswith."""

    def __init__(self, operand: Expression, kind: str, pattern: str, regex: bool = True):
        if kind not in ("contains", "like", "startswith", "endswith"):
            raise ExpressionError(f"unknown string predicate {kind!r}")
        self.operand = operand
        self.kind = kind
        self.pattern = pattern
        self.regex = regex

    def evaluate(self, frame) -> Column:
        value = self.operand.evaluate(frame)
        if self.kind == "contains":
            return string_ops.contains(value, self.pattern, regex=self.regex)
        if self.kind == "like":
            return string_ops.match_like(value, self.pattern)
        if self.kind == "startswith":
            return string_ops.startswith(value, self.pattern)
        return string_ops.endswith(value, self.pattern)

    def columns(self) -> set[str]:
        return self.operand.columns()

    def describe(self) -> str:
        return f"{self.kind}({self.operand.describe()}, {self.pattern!r})"


class DateComponent(Expression):
    """Extract year/month/day/... from a datetime expression."""

    def __init__(self, operand: Expression, component: str):
        self.operand = operand
        self.component = component

    def evaluate(self, frame) -> Column:
        return extract_component(self.operand.evaluate(frame), self.component)

    def columns(self) -> set[str]:
        return self.operand.columns()

    def describe(self) -> str:
        return f"{self.component}({self.operand.describe()})"


class Apply(Expression):
    """Apply an arbitrary Python scalar function (escape hatch for ``edit``)."""

    def __init__(self, operand: Expression, func: Callable[[Any], Any], dtype=None):
        self.operand = operand
        self.func = func
        self.dtype = dtype

    def evaluate(self, frame) -> Column:
        return self.operand.evaluate(frame).apply(self.func, self.dtype)

    def columns(self) -> set[str]:
        return self.operand.columns()

    def describe(self) -> str:
        name = getattr(self.func, "__name__", "λ")
        return f"apply({self.operand.describe()}, {name})"


def col(name: str) -> ColumnRef:
    """Reference a column of the target frame by name."""
    return ColumnRef(name)


def lit(value: Any) -> Literal:
    """A literal scalar expression."""
    return Literal(value)


def ensure_boolean(column: Column) -> np.ndarray:
    """Validate that an expression produced a boolean mask and return it."""
    if column.dtype is not BOOL:
        raise ExpressionError(f"predicate must evaluate to BOOL, got {column.dtype}")
    return column.to_numpy_bool()
