"""String kernels used by the EDA/DT/DC preparators.

These functions operate on STRING (or CATEGORICAL) columns and return new
columns; they back the ``srchptn``, ``setcase``, ``replace`` (substring
variant) and ``edit`` preparators as well as the string predicates in the
TPC-H queries (``LIKE`` patterns).
"""

from __future__ import annotations

import re
from typing import Callable

import numpy as np

from .column import Column
from .dictionary import DictStringColumn
from .dtypes import BOOL, INT64, STRING
from .errors import DTypeError

__all__ = [
    "contains",
    "match_like",
    "startswith",
    "endswith",
    "set_case",
    "strip",
    "replace_substring",
    "str_length",
    "extract_regex",
    "concat_strings",
]


def _string_values(column: Column, op_name: str) -> np.ndarray:
    if column.dtype not in (STRING,) and column.dtype.value != "categorical":
        raise DTypeError(f"{op_name} requires a string column, got {column.dtype}")
    return column.to_string_array()


def _map_strings(column: Column, func: Callable[[str], str], op_name: str) -> Column:
    if isinstance(column, DictStringColumn):
        # dict backend: evaluate once per distinct value, gather through codes
        return column.map_distinct(func)
    strings = _string_values(column, op_name)
    out = np.empty(len(strings), dtype=object)
    valid = column.validity
    present = strings[valid]
    if present.size:
        # one ufunc dispatch instead of a Python-level loop over every row
        out[valid] = np.frompyfunc(func, 1, 1)(present)
    out[~valid] = None
    return Column(out, STRING, valid.copy())


def _mask_strings(column: Column, predicate: Callable[[str], bool], op_name: str) -> Column:
    """Boolean kernel: ``predicate`` per non-null value, ``False`` for nulls."""
    if isinstance(column, DictStringColumn):
        return Column(column.mask_distinct(predicate), BOOL, column.validity.copy())
    strings = _string_values(column, op_name)
    out = np.zeros(len(strings), dtype=bool)
    for i, s in enumerate(strings):
        if s is not None:
            out[i] = predicate(s)
    return Column(out, BOOL, column.validity.copy())


def contains(column: Column, pattern: str, regex: bool = True, case: bool = True) -> Column:
    """Boolean column marking rows whose string matches ``pattern``.

    Backs the ``srchptn`` (search by pattern) preparator.  With
    ``regex=False`` the pattern is treated as a literal substring.
    """
    flags = 0 if case else re.IGNORECASE
    if regex:
        compiled = re.compile(pattern, flags)
        matcher = lambda s: compiled.search(s) is not None  # noqa: E731
    else:
        needle = pattern if case else pattern.lower()
        matcher = (lambda s: needle in s) if case else (lambda s: needle in s.lower())
    return _mask_strings(column, matcher, "contains")


def match_like(column: Column, pattern: str) -> Column:
    """SQL ``LIKE`` matching (``%`` and ``_`` wildcards), used by TPC-H."""
    regex = "^" + re.escape(pattern).replace("%", ".*").replace("_", ".") + "$"
    return contains(column, regex, regex=True)


def startswith(column: Column, prefix: str) -> Column:
    return _mask_strings(column, lambda s: s.startswith(prefix), "startswith")


def endswith(column: Column, suffix: str) -> Column:
    return _mask_strings(column, lambda s: s.endswith(suffix), "endswith")


def set_case(column: Column, mode: str = "lower") -> Column:
    """Change string case (the ``setcase`` preparator): lower/upper/title."""
    funcs = {"lower": str.lower, "upper": str.upper, "title": str.title, "capitalize": str.capitalize}
    if mode not in funcs:
        raise ValueError(f"unknown case mode {mode!r}; expected one of {sorted(funcs)}")
    return _map_strings(column, funcs[mode], "set_case")


def strip(column: Column, chars: str | None = None) -> Column:
    return _map_strings(column, lambda s: s.strip(chars), "strip")


def replace_substring(column: Column, old: str, new: str, regex: bool = False) -> Column:
    """Substring replacement within each value (string variant of ``replace``)."""
    if regex:
        compiled = re.compile(old)
        return _map_strings(column, lambda s: compiled.sub(new, s), "replace_substring")
    return _map_strings(column, lambda s: s.replace(old, new), "replace_substring")


def str_length(column: Column) -> Column:
    if isinstance(column, DictStringColumn):
        # one len() per distinct value, then an O(n) gather (nulls stay 0)
        table = np.array([len(c) for c in column.categories.tolist()], dtype=np.int64)
        out = np.zeros(len(column), dtype=np.int64)
        if table.size:
            out[column.validity] = table[column.values[column.validity]]
        return Column(out, INT64, column.validity.copy())
    strings = _string_values(column, "str_length")
    out = np.zeros(len(strings), dtype=np.int64)
    valid = column.validity
    present = strings[valid]
    if present.size:
        out[valid] = np.frompyfunc(len, 1, 1)(present).astype(np.int64)
    return Column(out, INT64, valid.copy())


def extract_regex(column: Column, pattern: str, group: int = 0) -> Column:
    """Extract the first regex match (or capture group) from each value."""
    compiled = re.compile(pattern)

    def extract(s: str) -> str | None:
        match = compiled.search(s)
        return None if match is None else match.group(group)

    if isinstance(column, DictStringColumn):
        table = [extract(c) for c in column.categories.tolist()]
        out = column.gather_objects(table)
        validity = np.array([v is not None for v in out], dtype=bool)
        return DictStringColumn.from_strings(out, validity)
    strings = _string_values(column, "extract_regex")
    out = np.empty(len(strings), dtype=object)
    validity = column.validity.copy()
    for i, s in enumerate(strings):
        if s is None:
            out[i] = None
            continue
        match = compiled.search(s)
        if match is None:
            out[i] = None
            validity[i] = False
        else:
            out[i] = match.group(group)
    return Column(out, STRING, validity)


def concat_strings(left: Column, right: Column, separator: str = "") -> Column:
    """Concatenate two string columns elementwise."""
    a = _string_values(left, "concat_strings")
    b = _string_values(right, "concat_strings")
    if len(a) != len(b):
        raise DTypeError("concat_strings requires columns of equal length")
    out = np.empty(len(a), dtype=object)
    validity = left.validity & right.validity
    for i in range(len(a)):
        out[i] = f"{a[i]}{separator}{b[i]}" if validity[i] else None
    return Column(out, STRING, validity)
