"""Datetime parsing, formatting and component extraction.

The substrate stores timestamps as nanoseconds since the Unix epoch (int64)
with an external validity mask, which matches both the Arrow representation
and numpy's ``datetime64[ns]``.  The helpers in this module implement the
pieces needed by the ``chdate`` preparator and by the TPC-H date predicates:

* :func:`parse_datetime_scalar` / :func:`parse_datetime_column` — turn common
  textual formats into epoch nanoseconds;
* :func:`format_datetime_column` — render epoch nanoseconds with a strftime
  pattern;
* :func:`extract_component` — pull out year / month / day / hour / weekday.
"""

from __future__ import annotations

from datetime import datetime, timezone

import numpy as np

from .column import Column
from .dtypes import DATETIME, INT64, STRING
from .errors import DTypeError

__all__ = [
    "NS_PER_SECOND",
    "NS_PER_DAY",
    "parse_datetime_scalar",
    "parse_datetime_column",
    "format_datetime_column",
    "extract_component",
    "date_to_ns",
    "ns_to_datetime",
]

NS_PER_SECOND = 1_000_000_000
NS_PER_DAY = 86_400 * NS_PER_SECOND

_FORMATS = (
    "%Y-%m-%d %H:%M:%S",
    "%Y-%m-%dT%H:%M:%S",
    "%Y-%m-%d",
    "%Y/%m/%d",
    "%d/%m/%Y",
    "%m/%d/%Y",
    "%d-%m-%Y",
    "%Y%m%d",
    "%Y-%m-%d %H:%M",
    "%m/%d/%Y %H:%M:%S",
    "%m/%d/%Y %H:%M",
    "%b-%Y",
    "%b %Y",
    "%Y",
)


def date_to_ns(year: int, month: int = 1, day: int = 1, hour: int = 0,
               minute: int = 0, second: int = 0) -> int:
    """Epoch nanoseconds for a calendar timestamp (UTC)."""
    dt = datetime(year, month, day, hour, minute, second, tzinfo=timezone.utc)
    return int(dt.timestamp()) * NS_PER_SECOND


def ns_to_datetime(ns: int) -> datetime:
    """Inverse of :func:`date_to_ns` (UTC, second precision)."""
    return datetime.fromtimestamp(ns / NS_PER_SECOND, tz=timezone.utc)


def parse_datetime_scalar(text: str) -> int | None:
    """Parse a single textual timestamp; returns ``None`` when unparseable."""
    if text is None:
        return None
    text = text.strip()
    if not text:
        return None
    for fmt in _FORMATS:
        try:
            dt = datetime.strptime(text, fmt).replace(tzinfo=timezone.utc)
            return int(dt.timestamp() * NS_PER_SECOND)
        except ValueError:
            continue
    # ISO fallback handles fractional seconds and timezone offsets.
    try:
        dt = datetime.fromisoformat(text)
        if dt.tzinfo is None:
            dt = dt.replace(tzinfo=timezone.utc)
        return int(dt.timestamp() * NS_PER_SECOND)
    except ValueError:
        return None


def parse_datetime_column(column: Column, fmt: str | None = None) -> Column:
    """Parse a string column into a DATETIME column (the ``chdate`` preparator)."""
    if column.dtype is DATETIME:
        return column.copy()
    if column.dtype is INT64:
        return Column(column.values.astype(np.int64), DATETIME, column.validity.copy())
    if column.dtype is not STRING and column.dtype.value != "categorical":
        raise DTypeError(f"cannot parse {column.dtype} column as datetime")
    strings = column.to_string_array()
    n = len(strings)
    values = np.zeros(n, dtype=np.int64)
    validity = np.zeros(n, dtype=bool)
    for i, text in enumerate(strings):
        if text is None:
            continue
        if fmt is not None:
            try:
                dt = datetime.strptime(text, fmt).replace(tzinfo=timezone.utc)
                values[i] = int(dt.timestamp() * NS_PER_SECOND)
                validity[i] = True
                continue
            except ValueError:
                pass
        parsed = parse_datetime_scalar(text)
        if parsed is not None:
            values[i] = parsed
            validity[i] = True
    return Column(values, DATETIME, validity)


def format_datetime_column(column: Column, fmt: str = "%Y-%m-%d") -> Column:
    """Render a DATETIME column as strings using a strftime pattern."""
    if column.dtype is not DATETIME:
        column = parse_datetime_column(column)
    out = np.empty(len(column), dtype=object)
    for i in range(len(column)):
        if column.validity[i]:
            out[i] = ns_to_datetime(int(column.values[i])).strftime(fmt)
        else:
            out[i] = None
    return Column(out, STRING, column.validity.copy())


_COMPONENTS = ("year", "month", "day", "hour", "minute", "second", "weekday", "dayofyear")


def extract_component(column: Column, component: str) -> Column:
    """Extract an integer calendar component from a DATETIME column."""
    if component not in _COMPONENTS:
        raise ValueError(f"unknown datetime component {component!r}; expected one of {_COMPONENTS}")
    if column.dtype is not DATETIME:
        column = parse_datetime_column(column)
    out = np.zeros(len(column), dtype=np.int64)
    for i in range(len(column)):
        if not column.validity[i]:
            continue
        dt = ns_to_datetime(int(column.values[i]))
        if component == "weekday":
            out[i] = dt.weekday()
        elif component == "dayofyear":
            out[i] = dt.timetuple().tm_yday
        else:
            out[i] = getattr(dt, component)
    return Column(out, INT64, column.validity.copy())
