"""Dictionary-encoded string columns: the ``"dict"`` backend.

A :class:`DictStringColumn` stores a STRING column as ``int32`` codes into a
deduplicated, **sorted** value table (the same physical layout the substrate
already uses for CATEGORICAL columns) instead of a numpy ``object`` array.
Because the table is sorted, code order is string order, so sorting, min/max
and range predicates operate on the codes without decoding.

The payoff is that every string kernel collapses to a pass over the *distinct*
values followed by an O(n) gather through the codes (see
:meth:`DictStringColumn.map_distinct` / :meth:`DictStringColumn.mask_distinct`)
— on a column with ``n`` rows and ``k`` distinct values, a regex predicate
costs ``k`` matches instead of ``n``.  Joins and group-bys factorize to the
codes directly (:mod:`repro.frame.join`, :mod:`repro.frame.groupby`).

Invariant: ``categories`` is sorted and duplicate-free; every valid row's code
indexes it and null rows carry code ``-1``.  All constructors below preserve
this (``_remap`` re-normalizes after a mapping merges or reorders values).

The logical dtype stays ``STRING`` — engines, plans and tests cannot tell the
backends apart except by speed, which is exactly the bit-identity contract the
property tests pin (``tests/test_backends.py``).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

import numpy as np

from .backends import ColumnFactory, DICT_BACKEND
from .column import Column
from .dtypes import BOOL, STRING, DType
from .errors import DTypeError

__all__ = ["DictStringColumn"]


class DictStringColumn(Column):
    """STRING column physically stored as int32 codes + a sorted value table."""

    __slots__ = ()

    backend = DICT_BACKEND

    def __init__(
        self,
        values: np.ndarray,
        dtype: DType = STRING,
        validity: np.ndarray | None = None,
        categories: np.ndarray | None = None,
    ):
        if dtype is not STRING:
            raise DTypeError(f"dictionary-encoded columns are STRING, got {dtype}")
        if categories is None:
            raise DTypeError("dictionary-encoded columns require a value table")
        codes = np.asarray(values)
        if codes.dtype != np.int32:
            codes = codes.astype(np.int32)
        super().__init__(codes, STRING, validity, categories)

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_strings(cls, strings: np.ndarray, validity: np.ndarray | None = None
                     ) -> "DictStringColumn":
        """Encode an object array of ``str | None`` (dedup + sort the table)."""
        strings = np.asarray(strings, dtype=object)
        if validity is None:
            validity = np.array([s is not None for s in strings], dtype=bool)
        validity = np.asarray(validity, dtype=bool)
        codes = np.full(len(strings), -1, dtype=np.int32)
        valid_strings = strings[validity]
        if valid_strings.size:
            categories, inverse = np.unique(valid_strings, return_inverse=True)
            codes[validity] = inverse.astype(np.int32)
        else:
            categories = np.empty(0, dtype=object)
        return cls(codes, STRING, validity, categories)

    def _remap(self, mapped: np.ndarray) -> "DictStringColumn":
        """Rebuild with a transformed value table, restoring the sorted
        duplicate-free invariant (a mapping may merge or reorder values)."""
        codes = np.full(len(self), -1, dtype=np.int32)
        if len(mapped):
            categories, inverse = np.unique(mapped, return_inverse=True)
            valid = self.validity
            codes[valid] = inverse.astype(np.int32)[self.values[valid]]
        else:
            categories = np.empty(0, dtype=object)
        return DictStringColumn(codes, STRING, self.validity.copy(), categories)

    # ------------------------------------------------------------------ #
    # distinct-value kernels
    # ------------------------------------------------------------------ #
    def map_distinct(self, func: Callable[[str], str]) -> "DictStringColumn":
        """Apply a ``str -> str`` function once per distinct value."""
        mapped = np.array([func(c) for c in self.categories.tolist()], dtype=object)
        return self._remap(mapped)

    def mask_distinct(self, predicate: Callable[[str], bool]) -> np.ndarray:
        """Row mask from a predicate evaluated once per distinct value.

        Null rows are ``False``, matching the reference string kernels.
        """
        out = np.zeros(len(self), dtype=bool)
        if len(self.categories):
            table = np.array([bool(predicate(c)) for c in self.categories.tolist()],
                             dtype=bool)
            valid = self.validity
            out[valid] = table[self.values[valid]]
        return out

    def gather_objects(self, table: "Iterable[Any]") -> np.ndarray:
        """Gather one precomputed object per distinct value through the codes
        (null rows gather ``None``)."""
        table = list(table)
        ext = np.empty(len(table) + 1, dtype=object)
        ext[:len(table)] = table
        ext[-1] = None
        codes = np.where(self.validity, self.values, -1).astype(np.int64)
        return ext[codes]

    # ------------------------------------------------------------------ #
    # logical API overrides
    # ------------------------------------------------------------------ #
    def _decode(self, raw: Any) -> Any:
        return self.categories[int(raw)]

    def to_string_array(self) -> np.ndarray:
        return self.gather_objects(self.categories.tolist())

    def to_list(self) -> list[Any]:
        return self.to_string_array().tolist()

    def fill_null(self, value: Any) -> "Column":
        if self.null_count() == 0:
            return self.copy()
        text = str(value)
        categories = self.categories
        pos = int(np.searchsorted(categories, text)) if len(categories) else 0
        codes = self.values.astype(np.int32, copy=True)
        if pos >= len(categories) or categories[pos] != text:
            categories = np.insert(categories, pos, text)
            codes = np.where(codes >= pos, codes + 1, codes).astype(np.int32)
        codes[~self.validity] = pos
        return DictStringColumn(codes, STRING, np.ones(len(self), dtype=bool),
                                categories)

    def memory_usage(self) -> int:
        n = len(self)
        table = int(sum(len(c) for c in self.categories.tolist()))
        return n * 4 + n // 8 + 1 + table + 16 * len(self.categories)

    def _sort_keys(self) -> np.ndarray:
        # Codes order valid values lexicographically (sorted table invariant);
        # nulls share one constant key and are regrouped by ``sort_indices``.
        return np.where(self.validity, self.values.astype(np.int64), -1)

    def min(self) -> Any:
        codes = self.values[self.validity]
        return self.categories[int(codes.min())] if codes.size else None

    def max(self) -> Any:
        codes = self.values[self.validity]
        return self.categories[int(codes.max())] if codes.size else None

    def nunique(self) -> int:
        codes = self.values[self.validity]
        return int(np.unique(codes).size) if codes.size else 0

    def unique(self) -> "Column":
        codes = self.values[self.validity]
        if codes.size == 0:
            return Column.from_values([], STRING)
        uniq, first = np.unique(codes, return_index=True)
        order = np.argsort(first, kind="stable")
        return Column.from_values(self.categories[uniq[order]].tolist(), STRING)

    def value_counts(self) -> dict[Any, int]:
        codes = self.values[self.validity]
        if codes.size == 0:
            return {}
        counts = np.bincount(codes, minlength=len(self.categories))
        uniq, first = np.unique(codes, return_index=True)
        order = np.argsort(first, kind="stable")
        return {self.categories[c]: int(counts[c]) for c in uniq[order]}

    def is_in(self, values: "Iterable[Any]") -> "Column":
        lookup = set(values)
        out = self.mask_distinct(lambda c: c in lookup)
        if None in lookup:
            out[~self.validity] = True
        return Column(out, BOOL, self.validity.copy())

    def _compare(self, other: "Column | Any", op: Callable) -> "Column":
        if isinstance(other, str):
            out = self.mask_distinct(lambda c: bool(op(c, other)))
            return Column(out, BOOL, self.validity.copy())
        return super()._compare(other, op)

    def replace(self, mapping: dict[Any, Any]) -> "Column":
        str_only = all(isinstance(k, str) for k in mapping) and all(
            isinstance(v, str) for v in mapping.values())
        if not str_only:
            return super().replace(mapping)
        if not any(c in mapping for c in self.categories.tolist()):
            return self.copy()
        mapped = np.array([mapping.get(c, c) for c in self.categories.tolist()],
                          dtype=object)
        return self._remap(mapped)


# --------------------------------------------------------------------------- #
# "dict" backend registration
# --------------------------------------------------------------------------- #
def _build_dict_string(values: np.ndarray, validity: np.ndarray) -> DictStringColumn:
    return DictStringColumn.from_strings(values, validity)


ColumnFactory.register((STRING.typecode, DICT_BACKEND), _build_dict_string)
