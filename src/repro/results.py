"""Unified measurement records for the whole engine × dataset × pipeline matrix.

Every number the framework produces — function-core, pipeline-stage and
pipeline-full timings, I/O read/write times, TPC-H query runtimes — is emitted
as a single :class:`Measurement` record and collected into a
:class:`ResultSet`.  A ``ResultSet`` can be filtered, grouped, pivoted,
compared against a baseline engine and serialized losslessly to JSON or CSV,
so experiment drivers, the CLI and downstream analysis all speak one format
instead of the three mode-specific timing dataclasses of the original runner.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import asdict, dataclass, fields
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

__all__ = ["Measurement", "ResultSet", "read_path_or_content"]


@dataclass
class Measurement:
    """One cell of the evaluation matrix.

    The meaning of ``stage``/``step`` depends on ``mode``:

    * ``core``  — one record per preparator call; ``step`` is the preparator
      name, ``step_index`` its position in the pipeline, ``stage`` its stage;
    * ``stage`` — one record per pipeline stage; ``stage`` holds the stage;
    * ``full``  — one record per end-to-end pipeline run;
    * ``read``/``write`` — one record per I/O operation; ``step`` is the file
      format (``csv``/``parquet``);
    * ``tpch``  — one record per query; ``pipeline``/``step`` hold the query.
    """

    engine: str
    dataset: str = ""
    pipeline: str = ""
    mode: str = "full"
    stage: str = ""
    step: str = ""
    step_index: int = -1
    seconds: float = 0.0
    peak_bytes: int = 0
    rows: int = 0
    lazy: bool = False
    #: Whether the cell ran through the morsel-driven streaming executor.
    streaming: bool = False
    #: Physical column backend the substrate ran on ("object" or "dict").
    backend: str = "object"
    #: Whether the simulated run went out-of-core (breaker partitions or
    #: spill-to-disk engines writing overflow to disk instead of OOMing).
    spilled: bool = False
    failed: bool = False
    failure_reason: str = ""
    machine: str = ""
    #: Resilience outcome of the cell: ``"ok"`` for any organically produced
    #: record (including organic failures), ``"error"`` for records the
    #: scheduler synthesized when a poison cell was quarantined after
    #: exhausting its :class:`~repro.sweep.resilience.RetryPolicy`.
    status: str = "ok"
    #: Stringified final exception of a quarantined cell (else empty).
    error: str = ""
    #: Execution attempts a quarantined cell consumed (0 on ordinary records,
    #: so successful results stay bit-identical whether or not they were
    #: retried — retry accounting lives in ``SweepStats``).
    attempts: int = 0

    @property
    def strategy(self) -> str:
        """Physical execution strategy of the cell: eager, lazy or streaming."""
        if self.streaming:
            return "streaming"
        return "lazy" if self.lazy else "eager"

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    def to_json(self) -> str:
        """One compact, newline-free JSON line.

        This is the incremental serialization unit: the service streams each
        measurement as one NDJSON line the moment its cell completes, and
        :meth:`ResultSet.from_ndjson` reassembles the stream losslessly.
        """
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Measurement":
        if "engine" not in data:
            raise ValueError(f"measurement record is missing the 'engine' key: {dict(data)}")
        known = {f.name: f.type for f in fields(cls)}
        kwargs: dict[str, Any] = {}
        for name, value in data.items():
            if name in known:
                kwargs[name] = _coerce(known[name], value)
        return cls(**kwargs)


def _coerce(type_name: str, value: Any) -> Any:
    """Coerce a JSON/CSV cell back to the declared Measurement field type."""
    if type_name == "bool":
        if isinstance(value, str):
            return value.strip().lower() in ("true", "1", "yes")
        return bool(value)
    if type_name == "int":
        return int(float(value)) if value not in ("", None) else 0
    if type_name == "float":
        return float(value) if value not in ("", None) else 0.0
    return "" if value is None else str(value)


class ResultSet:
    """An ordered collection of :class:`Measurement` records."""

    __slots__ = ("measurements",)

    def __init__(self, measurements: Iterable[Measurement] = ()):
        self.measurements: list[Measurement] = list(measurements)

    # ------------------------------------------------------------------ #
    # container protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.measurements)

    def __iter__(self) -> Iterator[Measurement]:
        return iter(self.measurements)

    def __bool__(self) -> bool:
        return bool(self.measurements)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return ResultSet(self.measurements[index])
        return self.measurements[index]

    def __add__(self, other: "ResultSet") -> "ResultSet":
        return ResultSet(self.measurements + list(other))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResultSet):
            return NotImplemented
        return self.measurements == other.measurements

    def __repr__(self) -> str:
        engines = self.values("engine")
        modes = self.values("mode")
        return (f"ResultSet({len(self)} measurements, engines={engines}, "
                f"modes={modes}, failures={len(self.failures())})")

    def append(self, measurement: Measurement) -> None:
        self.measurements.append(measurement)

    def extend(self, measurements: Iterable[Measurement]) -> None:
        self.measurements.extend(measurements)

    # ------------------------------------------------------------------ #
    # selection
    # ------------------------------------------------------------------ #
    def filter(self, predicate: Callable[[Measurement], bool] | None = None,
               **where: Any) -> "ResultSet":
        """Rows matching a predicate and/or field conditions.

        A condition value may be a scalar (equality), a list/tuple/set/frozenset
        (membership) or a callable (applied to the field value).
        """
        def matches(m: Measurement) -> bool:
            if predicate is not None and not predicate(m):
                return False
            for name, wanted in where.items():
                value = getattr(m, name)
                if callable(wanted):
                    if not wanted(value):
                        return False
                elif isinstance(wanted, (list, tuple, set, frozenset)):
                    if value not in wanted:
                        return False
                elif value != wanted:
                    return False
            return True

        return ResultSet(m for m in self.measurements if matches(m))

    def ok(self) -> "ResultSet":
        """Rows that completed (no OOM, no unsupported operation)."""
        return self.filter(failed=False)

    def failures(self) -> "ResultSet":
        """Rows that failed (the ✕/OOM entries of the paper's artifacts)."""
        return self.filter(failed=True)

    def group_by(self, *field_names: str) -> dict:
        """Split into sub-ResultSets keyed by the given fields.

        Keys are scalars for one field and tuples for several; insertion order
        follows first occurrence.
        """
        if not field_names:
            raise ValueError("group_by needs at least one field name")
        groups: dict[Any, ResultSet] = {}
        for m in self.measurements:
            key = tuple(getattr(m, f) for f in field_names)
            if len(field_names) == 1:
                key = key[0]
            groups.setdefault(key, ResultSet()).append(m)
        return groups

    def values(self, field_name: str) -> list:
        """Distinct values of a field, in first-occurrence order."""
        seen: dict[Any, None] = {}
        for m in self.measurements:
            seen.setdefault(getattr(m, field_name), None)
        return list(seen)

    def engines(self) -> list[str]:
        return self.values("engine")

    def datasets(self) -> list[str]:
        return self.values("dataset")

    def pipelines(self) -> list[str]:
        return self.values("pipeline")

    # ------------------------------------------------------------------ #
    # aggregation
    # ------------------------------------------------------------------ #
    def mean(self, value: str = "seconds") -> float:
        """Plain mean of a numeric field over every row in the set."""
        if not self.measurements:
            raise ValueError("cannot aggregate an empty ResultSet")
        return sum(getattr(m, value) for m in self.measurements) / len(self.measurements)

    def total(self, value: str = "seconds") -> float:
        return sum(getattr(m, value) for m in self.measurements)

    def pivot(self, rows: "str | Sequence[str]" = "dataset", cols: str = "engine",
              value: str = "seconds", agg: str = "mean") -> dict:
        """Nested dict ``{row_key: {col_key: aggregated value}}``.

        ``agg`` is one of ``mean``, ``sum``, ``min``, ``max``, ``count``.
        Row keys are scalars for one row field, tuples for several.
        """
        row_fields = (rows,) if isinstance(rows, str) else tuple(rows)
        aggregate = {
            "mean": lambda v: sum(v) / len(v),
            "sum": sum,
            "min": min,
            "max": max,
            "count": len,
        }[agg]
        cells: dict[Any, dict[Any, list]] = {}
        for m in self.measurements:
            row_key = tuple(getattr(m, f) for f in row_fields)
            if len(row_fields) == 1:
                row_key = row_key[0]
            cells.setdefault(row_key, {}).setdefault(getattr(m, cols), []).append(
                getattr(m, value))
        return {row: {col: aggregate(vals) for col, vals in per_col.items()}
                for row, per_col in cells.items()}

    def winners(self, by: "str | Sequence[str]" = ("dataset", "pipeline"),
                value: str = "seconds") -> dict:
        """The measured-fastest cell per group: ``{group: Measurement}``.

        Failed rows are excluded; groups with no completed rows are dropped.
        Within a group, each (engine, strategy) pair is averaged over its
        rows first, then the pair with the smallest mean wins (ties go to
        the first pair seen).  This is what Figure 9 compares the advisor's
        predicted-fastest configuration against.
        """
        by_fields = (by,) if isinstance(by, str) else tuple(by)
        out: dict[Any, Measurement] = {}
        for group, subset in self.ok().group_by(*by_fields).items():
            per_pair: dict[tuple[str, str], list[float]] = {}
            for m in subset:
                per_pair.setdefault((m.engine, m.strategy),
                                    []).append(getattr(m, value))
            best_key, best_value = None, None
            for pair, values in per_pair.items():
                mean_value = sum(values) / len(values)
                if best_value is None or mean_value < best_value:
                    best_key, best_value = pair, mean_value
            if best_key is None:
                continue
            winner = next(m for m in subset
                          if (m.engine, m.strategy) == best_key)
            winner = Measurement.from_dict(winner.to_dict())
            setattr(winner, value, best_value)  # the group mean it won with
            out[group] = winner
        return out

    def speedup_vs(self, baseline: str = "pandas",
                   by: "str | Sequence[str]" = "dataset",
                   value: str = "seconds") -> dict:
        """Speedup of every engine over a baseline engine, per group.

        Failed rows are excluded.  For every group (default: per dataset) the
        baseline's mean is divided by each engine's mean, so values above 1
        mean the engine outperforms the baseline.  Groups without baseline
        rows are dropped.
        """
        table = self.ok().pivot(rows=by, cols="engine", value=value, agg="mean")
        out: dict[Any, dict[str, float]] = {}
        for row, per_engine in table.items():
            base = per_engine.get(baseline)
            if base is None or base <= 0:
                continue
            out[row] = {engine: (float("inf") if seconds <= 0 else base / seconds)
                        for engine, seconds in per_engine.items()}
        return out

    # ------------------------------------------------------------------ #
    # terminal-friendly rendering (no pandas required)
    # ------------------------------------------------------------------ #
    def summary(self) -> str:
        """Multi-line overview of a sweep, for eyeballing in the terminal."""
        if not self.measurements:
            return "ResultSet: empty"
        failures = self.failures()
        lines = [f"ResultSet: {len(self)} measurements"
                 + (f" ({len(failures)} failed)" if failures else "")]
        mode_counts = ", ".join(f"{mode} ({len(group)})"
                                for mode, group in self.group_by("mode").items())
        lines.append(f"  modes:    {mode_counts}")
        lines.append(f"  engines:  {', '.join(self.engines())}")
        datasets = [d for d in self.datasets() if d]
        if datasets:
            lines.append(f"  datasets: {', '.join(datasets)}")
        machines = [m for m in self.values('machine') if m]
        if machines:
            lines.append(f"  machines: {', '.join(machines)}")
        ok = self.ok()
        if ok:
            lines.append(f"  simulated seconds (ok rows): "
                         f"total {ok.total():.3f}, mean {ok.mean():.3f}")
        for m in failures:
            where = "/".join(p for p in (m.dataset, m.pipeline, m.stage, m.step) if p)
            lines.append(f"  FAILED {m.engine} {where}: {m.failure_reason}")
        return "\n".join(lines)

    def to_markdown(self, rows: "str | Sequence[str]" = "dataset",
                    cols: str = "engine", value: str = "seconds",
                    agg: str = "mean", fmt: str = "{:.3f}") -> str:
        """The :meth:`pivot` table rendered as a GitHub-flavoured table.

        Failed rows are excluded (they would skew aggregates); missing cells
        render as ``-``.
        """
        ok = self.ok()
        if not ok:
            return "(no successful measurements)"
        row_fields = (rows,) if isinstance(rows, str) else tuple(rows)
        table = ok.pivot(rows=row_fields, cols=cols, value=value, agg=agg)
        col_keys = ok.values(cols)
        header = [*row_fields, *(str(c) for c in col_keys)]
        body: list[list[str]] = []
        for row_key, per_col in table.items():
            key = row_key if isinstance(row_key, tuple) else (row_key,)
            rendered = [str(k) for k in key]
            for col in col_keys:
                cell = per_col.get(col)
                rendered.append("-" if cell is None else fmt.format(cell))
            body.append(rendered)
        widths = [max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
                  for i in range(len(header))]
        def line(cells: Sequence[str]) -> str:
            return "| " + " | ".join(c.ljust(w) for c, w in zip(cells, widths)) + " |"
        out = [line(header),
               "|" + "|".join("-" * (w + 2) for w in widths) + "|"]
        out.extend(line(r) for r in body)
        return "\n".join(out)

    # ------------------------------------------------------------------ #
    # (de)serialization
    # ------------------------------------------------------------------ #
    def to_records(self) -> list[dict[str, Any]]:
        return [m.to_dict() for m in self.measurements]

    @classmethod
    def from_records(cls, records: Iterable[Mapping[str, Any]]) -> "ResultSet":
        return cls(Measurement.from_dict(r) for r in records)

    def to_json(self, path: "str | Path | None" = None, indent: int = 2) -> str:
        text = json.dumps({"version": 1, "measurements": self.to_records()}, indent=indent)
        if path is not None:
            Path(path).write_text(text, encoding="utf-8")
        return text

    @classmethod
    def from_json(cls, source: "str | Path") -> "ResultSet":
        """Load from a JSON file path or a JSON string.

        A path-like string pointing at a missing file raises a clear
        :class:`FileNotFoundError` instead of an opaque JSON error.
        """
        text = read_path_or_content(source, kind="result-set JSON")
        payload = json.loads(text)
        records = payload["measurements"] if isinstance(payload, Mapping) else payload
        return cls.from_records(records)

    def to_ndjson(self, path: "str | Path | None" = None) -> str:
        """Newline-delimited JSON: one :meth:`Measurement.to_json` line per row.

        Unlike :meth:`to_json`, the output is valid after any prefix of its
        lines, so it can be produced (and consumed) incrementally — this is
        the service's streaming format.
        """
        text = "".join(m.to_json() + "\n" for m in self.measurements)
        if path is not None:
            Path(path).write_text(text, encoding="utf-8")
        return text

    @classmethod
    def from_ndjson(cls, source: "str | Path") -> "ResultSet":
        """Load from an NDJSON file path or NDJSON text (blank lines skipped)."""
        text = read_path_or_content(source, kind="result-set NDJSON")
        return cls.from_records(json.loads(line)
                                for line in text.splitlines() if line.strip())

    def to_csv(self, path: "str | Path | None" = None) -> str:
        names = [f.name for f in fields(Measurement)]
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=names, lineterminator="\n")
        writer.writeheader()
        for m in self.measurements:
            row = m.to_dict()
            row["lazy"] = "true" if row["lazy"] else "false"
            row["failed"] = "true" if row["failed"] else "false"
            writer.writerow(row)
        text = buffer.getvalue()
        if path is not None:
            Path(path).write_text(text, encoding="utf-8")
        return text

    @classmethod
    def from_csv(cls, source: "str | Path") -> "ResultSet":
        """Load from a CSV file path or CSV text (as written by :meth:`to_csv`)."""
        text = read_path_or_content(source, kind="result-set CSV")
        return cls.from_records(csv.DictReader(io.StringIO(text)))


def read_path_or_content(source: "str | Path", kind: str = "input") -> str:
    """Resolve a file path / literal-content argument to its text.

    Strings that look like serialized content (JSON objects or arrays, or
    multi-line CSV) are returned as-is; everything else is treated as a path
    and must exist.
    """
    if isinstance(source, Path):
        if not source.exists():
            raise FileNotFoundError(f"{kind} file not found: {source}")
        return source.read_text(encoding="utf-8")
    text = str(source)
    stripped = text.lstrip()
    if stripped.startswith("{") or stripped.startswith("[") or "\n" in text:
        return text
    path = Path(text)
    try:
        exists = path.exists()
    except OSError:
        exists = False
    if not exists:
        raise FileNotFoundError(
            f"{kind} file not found: {text!r} (pass the path to an existing file, "
            f"or the serialized content itself)")
    return path.read_text(encoding="utf-8")
