"""Shared configuration for sessions, experiment drivers and benchmarks.

A single :class:`ExperimentConfig` controls the physical scale of the
generated data, the number of simulated runs, the machine and the engines and
datasets involved, so the same code serves quick tests (tiny scale, one run)
and the full benchmark harness (default scale, trimmed average of several
runs).  It is the configuration object accepted by :class:`repro.Session`;
``repro.experiments.context`` re-exports it for backwards compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Sequence

from .engines.registry import DEFAULT_ENGINES, TPCH_ENGINES
from .simulate.hardware import PAPER_SERVER, MachineConfig

__all__ = ["ExperimentConfig"]


@dataclass
class ExperimentConfig:
    """Knobs shared by the session facade and all experiment drivers."""

    #: Physical sample scale (1.0 = the datasets' default physical sizes).
    scale: float = 1.0
    #: Simulated measurement repetitions (the paper uses 10).
    runs: int = 3
    #: Machine configuration the experiment is priced on.
    machine: MachineConfig = PAPER_SERVER
    #: Engines taking part in the data-preparation experiments.
    engines: Sequence[str] = field(default_factory=lambda: list(DEFAULT_ENGINES))
    #: Engines taking part in the TPC-H experiment.
    tpch_engines: Sequence[str] = field(default_factory=lambda: list(TPCH_ENGINES))
    #: Datasets to include (defaults to all four).
    datasets: Sequence[str] = field(default_factory=lambda: ["athlete", "loan", "patrol", "taxi"])
    #: Random seed used by every generator.
    seed: int = 7
    #: Physical column backend the substrate runs on ("object" or "dict").
    backend: str = "object"

    @classmethod
    def quick(cls) -> "ExperimentConfig":
        """A configuration small enough for unit tests."""
        return cls(scale=0.1, runs=1, datasets=["athlete", "taxi"],
                   engines=["pandas", "polars", "cudf", "sparksql", "vaex"])

    def but(self, **overrides: Any) -> "ExperimentConfig":
        """A copy with some fields replaced (machine/engine sweeps)."""
        return replace(self, **overrides)
