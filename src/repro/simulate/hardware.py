"""Machine and accelerator configurations.

The paper runs its main experiments on a dual AMD EPYC server (48 threads,
512 GB RAM, NVIDIA A100 40 GB) and its scalability study on three simulated
configurations (Table 4: laptop, workstation, server).  Since this
reproduction runs on whatever small machine executes the test suite, the
hardware is modelled explicitly: a :class:`MachineConfig` carries the thread
count, RAM size, disk bandwidth used for spill, and optionally a
:class:`GpuConfig`; the cost and memory models consume these numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "GpuConfig",
    "MachineConfig",
    "LAPTOP",
    "WORKSTATION",
    "SERVER",
    "PAPER_SERVER",
    "MACHINE_CONFIGS",
    "get_machine",
]

GB = 1024 ** 3


@dataclass(frozen=True)
class GpuConfig:
    """A CUDA-capable accelerator (the paper uses an NVIDIA A100 40 GB)."""

    name: str = "A100"
    memory_gb: float = 40.0
    #: Throughput multiplier over one CPU thread for data-parallel kernels.
    throughput_multiplier: float = 220.0
    #: Host-to-device transfer bandwidth in GB/s (PCIe 4.0 x16 ballpark).
    transfer_gb_per_s: float = 24.0

    @property
    def memory_bytes(self) -> int:
        return int(self.memory_gb * GB)


@dataclass(frozen=True)
class MachineConfig:
    """A single-machine hardware configuration (Table 4)."""

    name: str
    cpu_threads: int
    ram_gb: float
    gpu: GpuConfig | None = None
    #: Sequential disk bandwidth in GB/s, used for spill-to-disk and I/O.
    disk_gb_per_s: float = 1.8
    #: Fraction of RAM actually usable by the dataframe process.
    usable_ram_fraction: float = 0.9
    #: Dask / Ray worker configuration (informational, reported in Table 4).
    dask_workers: int = 4
    dask_threads: int = 8
    ray_workers: int = 8

    @property
    def ram_bytes(self) -> int:
        return int(self.ram_gb * GB)

    @property
    def usable_ram_bytes(self) -> int:
        return int(self.ram_bytes * self.usable_ram_fraction)

    @property
    def has_gpu(self) -> bool:
        return self.gpu is not None

    def describe(self) -> dict:
        """Row used when regenerating Table 4."""
        return {
            "machine": self.name,
            "cpus": self.cpu_threads,
            "ram_gb": self.ram_gb,
            "dask": f"{self.dask_workers}-{self.dask_threads}",
            "ray": self.ray_workers,
            "gpu": self.gpu.name if self.gpu else "-",
        }


#: Table 4 configurations.
LAPTOP = MachineConfig("laptop", cpu_threads=8, ram_gb=16.0,
                       dask_workers=4, dask_threads=8, ray_workers=8)
WORKSTATION = MachineConfig("workstation", cpu_threads=16, ram_gb=64.0,
                            dask_workers=4, dask_threads=16, ray_workers=16)
SERVER = MachineConfig("server", cpu_threads=24, ram_gb=128.0,
                       dask_workers=6, dask_threads=24, ray_workers=24)

#: The full evaluation machine (Section 3, "Hardware and Software").
PAPER_SERVER = MachineConfig("paper-server", cpu_threads=48, ram_gb=512.0,
                             gpu=GpuConfig(), dask_workers=8, dask_threads=48,
                             ray_workers=48)

MACHINE_CONFIGS = {m.name: m for m in (LAPTOP, WORKSTATION, SERVER, PAPER_SERVER)}


def get_machine(name: str) -> MachineConfig:
    """Look up a machine configuration by name."""
    try:
        return MACHINE_CONFIGS[name]
    except KeyError:
        raise KeyError(
            f"unknown machine {name!r}; available: {sorted(MACHINE_CONFIGS)}"
        ) from None
