"""Hardware, cost and memory simulation.

The paper's measurements come from a 48-thread / 512 GB / A100 server and
three derived machine configurations; this reproduction replaces that hardware
with an analytical model: machine configurations (:mod:`hardware`), per-engine
execution profiles (:mod:`profiles`), an operator cost model
(:mod:`costmodel`), a working-set / spill / OOM memory model (:mod:`memory`)
and a virtual clock with the paper's run-averaging protocol (:mod:`clock`).
"""

from .clock import OperationRecord, RunReport, VirtualClock, average_runs, trimmed_mean
from .costmodel import (BASE_BYTE_COST_NS, BASE_CELL_COST_NS, CostModel,
                        PlanCost, SimulatedCost)
from .hardware import (
    GB,
    LAPTOP,
    MACHINE_CONFIGS,
    PAPER_SERVER,
    SERVER,
    WORKSTATION,
    GpuConfig,
    MachineConfig,
    get_machine,
)
from .memory import (
    MemoryAssessment,
    MemoryModel,
    OPERATOR_PEAK_FACTORS,
    STREAM_PIPELINE_BREAKERS,
    SimulatedOOMError,
)
from .profiles import ENGINE_ORDER, ENGINE_PROFILES, EngineProfile, get_profile

__all__ = [
    "GpuConfig",
    "MachineConfig",
    "LAPTOP",
    "WORKSTATION",
    "SERVER",
    "PAPER_SERVER",
    "MACHINE_CONFIGS",
    "get_machine",
    "GB",
    "EngineProfile",
    "ENGINE_PROFILES",
    "ENGINE_ORDER",
    "get_profile",
    "CostModel",
    "SimulatedCost",
    "PlanCost",
    "BASE_CELL_COST_NS",
    "BASE_BYTE_COST_NS",
    "MemoryModel",
    "MemoryAssessment",
    "SimulatedOOMError",
    "OPERATOR_PEAK_FACTORS",
    "STREAM_PIPELINE_BREAKERS",
    "VirtualClock",
    "RunReport",
    "OperationRecord",
    "trimmed_mean",
    "average_runs",
]
