"""Execution profiles of the simulated dataframe libraries.

Each :class:`EngineProfile` encodes, as a small set of coefficients, the
execution strategy that the corresponding library documents and that the paper
identifies as the cause of its performance behaviour:

* how much of an operator's work parallelizes across CPU threads
  (``parallel_fraction``, Amdahl-style), or whether the GPU is used;
* the fixed per-operation overhead (query planning, JVM round trips, Pandas
  <-> Spark translation, kernel launch + PCIe transfer, ...);
* relative per-cell efficiency for each operator class
  (``op_multipliers``, 1.0 = the Pandas baseline kernel);
* the memory behaviour: working-set multiplier, ability to spill to disk,
  operator classes that can stream through bounded memory, and whether the
  data must fit in GPU memory;
* API/compatibility facts used for Table 1 and Table 3.

The numeric values are calibrated so that the *relative* behaviour reported in
the paper emerges from the model (who wins per stage, where OOMs happen, the
benefit of lazy evaluation); they are not measurements of the real libraries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

__all__ = ["EngineProfile", "ENGINE_PROFILES", "get_profile", "ENGINE_ORDER"]


@dataclass(frozen=True)
class EngineProfile:
    """Static description of one simulated library."""

    name: str
    display_name: str
    native_language: str
    licence: str
    version: str
    # --- execution strategy -------------------------------------------- #
    parallel_fraction: float = 0.0
    uses_gpu: bool = False
    lazy: bool = False
    fixed_overhead_s: float = 0.0005
    lazy_fixed_overhead_s: float | None = None
    #: Extra work multiplier paid when a lazy-capable engine is forced to run
    #: eagerly (per-call materialization / Pandas<->Spark conversion passes).
    eager_work_penalty: float = 1.0
    op_multipliers: Mapping[str, float] = field(default_factory=dict)
    # --- memory behaviour ---------------------------------------------- #
    #: Fraction of the dataset that must stay resident in RAM (or GPU memory)
    #: while a pipeline runs: 1.0 for eager in-memory engines, ~0 for
    #: memory-mapped ones.
    resident_fraction: float = 1.0
    #: Residency growth when running a full pipeline (accumulated eager
    #: intermediates); 1.0 means no growth over a single operator.
    pipeline_residency_multiplier: float = 1.0
    #: Working-set multiplier applied to the bytes an operator touches.
    memory_multiplier: float = 2.0
    spill_to_disk: bool = False
    streaming_ops: frozenset[str] = frozenset()
    streaming_memory_fraction: float = 0.25
    #: Whether the library can execute whole pipelines as a morsel-driven
    #: stream of bounded row batches (Polars' streaming collect, Spark's
    #: pipelined stages, Vaex/DataTable chunked evaluation).  Engines with
    #: this flag run the :class:`repro.plan.streaming.StreamingExecutor`
    #: instead of materializing every intermediate, and their memory model
    #: degrades to simulated spill instead of OOM.
    streaming_execution: bool = False
    requires_gpu_memory: bool = False
    # --- feature matrix (Table 1) --------------------------------------- #
    multithreading: bool = False
    gpu_acceleration: bool = False
    resource_optimization: bool = False
    lazy_evaluation: bool = False
    cluster_deploy: bool = False
    other_requirements: str = ""
    supports_parquet: bool = True

    def multiplier(self, op_class: str) -> float:
        """Per-cell efficiency for an operator class (1.0 = Pandas kernel)."""
        return self.op_multipliers.get(op_class, self.op_multipliers.get("default", 1.0))

    def feature_row(self) -> dict:
        """Row of Table 1 for this engine."""
        return {
            "library": self.display_name,
            "multithreading": self.multithreading,
            "gpu_acceleration": self.gpu_acceleration,
            "resource_optimization": self.resource_optimization,
            "lazy_evaluation": self.lazy_evaluation,
            "cluster_deploy": self.cluster_deploy,
            "native_language": self.native_language,
            "licence": self.licence,
            "other_requirements": self.other_requirements,
            "version": self.version,
        }


# --------------------------------------------------------------------------- #
# Streaming-capable operator classes shared by the memory-mapped engines.
# --------------------------------------------------------------------------- #
_COLUMNWISE_OPS = frozenset({
    "read_csv", "read_parquet", "write_csv", "write_parquet",
    "elementwise", "filter", "string", "date", "fillna", "dropna",
    "metadata", "isna",
})

ENGINE_ORDER = (
    "pandas", "sparkpd", "sparksql", "modin_dask", "modin_ray",
    "polars", "cudf", "vaex", "datatable",
)

ENGINE_PROFILES: dict[str, EngineProfile] = {
    # ------------------------------------------------------------------ #
    # Pandas: the single-threaded eager baseline.
    # ------------------------------------------------------------------ #
    "pandas": EngineProfile(
        name="pandas",
        display_name="Pandas",
        native_language="Python",
        licence="3-Clause BSD",
        version="2.2.1",
        parallel_fraction=0.0,
        fixed_overhead_s=0.0002,
        op_multipliers={},
        resident_fraction=1.0,
        pipeline_residency_multiplier=10.0,   # eager materialization of every intermediate
        memory_multiplier=2.5,
        resource_optimization=False,
    ),
    # ------------------------------------------------------------------ #
    # PySpark, Pandas-on-Spark API: distributed engine plus a translation
    # layer from Pandas calls into Spark plans (high per-call latency).
    # ------------------------------------------------------------------ #
    "sparkpd": EngineProfile(
        name="sparkpd",
        display_name="SparkPD",
        native_language="Scala",
        licence="Apache 2.0",
        version="3.5.1",
        parallel_fraction=0.90,
        lazy=True,
        fixed_overhead_s=0.28,
        lazy_fixed_overhead_s=0.09,
        eager_work_penalty=3.5,
        op_multipliers={
            "metadata": 40.0,          # driver round trip for trivial lookups
            "sort": 0.9,
            "quantile": 0.30,          # approximate quantiles
            "groupby": 0.5,
            "join": 0.5,
            "dedup": 0.5,
            "elementwise": 0.8,
            "read_csv": 0.35,
            "read_parquet": 0.12,
            "write_csv": 0.5,
            "write_parquet": 0.2,
        },
        resident_fraction=1.3,                # JVM copy + Arrow conversion buffers
        pipeline_residency_multiplier=2.5,
        memory_multiplier=2.5,
        streaming_execution=True,             # Spark pipelines stages over row batches
        multithreading=True,
        resource_optimization=True,
        lazy_evaluation=True,
        cluster_deploy=True,
        other_requirements="SparkContext",
    ),
    # ------------------------------------------------------------------ #
    # PySpark, Spark SQL API: Catalyst optimizer + disk spillover.
    # ------------------------------------------------------------------ #
    "sparksql": EngineProfile(
        name="sparksql",
        display_name="SparkSQL",
        native_language="Scala",
        licence="Apache 2.0",
        version="3.5.1",
        parallel_fraction=0.92,
        lazy=True,
        fixed_overhead_s=0.18,
        lazy_fixed_overhead_s=0.05,
        eager_work_penalty=1.7,
        op_multipliers={
            "metadata": 30.0,
            "quantile": 0.10,
            "sort": 0.25,
            "groupby": 0.18,
            "join": 0.18,
            "dedup": 0.30,
            "filter": 0.35,
            "elementwise": 0.5,
            "string": 0.5,
            "date": 0.5,
            "read_csv": 0.30,
            "read_parquet": 0.10,
            "write_csv": 0.45,
            "write_parquet": 0.18,
        },
        resident_fraction=0.3,
        pipeline_residency_multiplier=1.0,
        memory_multiplier=1.5,
        spill_to_disk=True,
        streaming_execution=True,             # whole-stage pipelining over batches
        multithreading=True,
        resource_optimization=True,
        lazy_evaluation=True,
        cluster_deploy=True,
        other_requirements="SparkContext",
    ),
    # ------------------------------------------------------------------ #
    # Modin on Dask: partitioned Pandas, centralized scheduler.
    # ------------------------------------------------------------------ #
    "modin_dask": EngineProfile(
        name="modin_dask",
        display_name="ModinD",
        native_language="Python",
        licence="Apache 2.0",
        version="0.29.0",
        parallel_fraction=0.82,
        fixed_overhead_s=0.06,
        op_multipliers={
            "sort": 2.6,               # per-partition Pandas sort + merge
            "stats": 0.15,
            "groupby": 0.45,
            "join": 0.55,
            "pivot": 0.30,
            "read_csv": 0.20,
            "read_parquet": 0.06,
            "write_csv": 0.35,
            "write_parquet": 0.04,
            "metadata": 6.0,
        },
        resident_fraction=1.2,                # centralized scheduler duplicates partitions
        pipeline_residency_multiplier=2.8,
        memory_multiplier=2.0,
        multithreading=True,
        resource_optimization=True,
        other_requirements="Ray/Dask",
    ),
    # ------------------------------------------------------------------ #
    # Modin on Ray: same partitioning, bottom-up distributed scheduler.
    # ------------------------------------------------------------------ #
    "modin_ray": EngineProfile(
        name="modin_ray",
        display_name="ModinR",
        native_language="Python",
        licence="Apache 2.0",
        version="0.29.0",
        parallel_fraction=0.88,
        fixed_overhead_s=0.045,
        op_multipliers={
            "sort": 2.2,
            "stats": 0.12,
            "groupby": 0.40,
            "join": 0.50,
            "pivot": 0.15,             # best performer for pivot on Taxi
            "read_csv": 0.18,
            "read_parquet": 0.05,
            "write_csv": 0.32,
            "write_parquet": 0.03,
            "metadata": 5.0,
        },
        resident_fraction=1.0,
        pipeline_residency_multiplier=2.4,
        memory_multiplier=1.8,
        multithreading=True,
        resource_optimization=True,
        other_requirements="Ray/Dask",
    ),
    # ------------------------------------------------------------------ #
    # Polars: Rust + Arrow, eager and lazy APIs, in-memory execution.
    # ------------------------------------------------------------------ #
    "polars": EngineProfile(
        name="polars",
        display_name="Polars",
        native_language="Rust",
        licence="MIT",
        version="0.20.23",
        parallel_fraction=0.95,
        lazy=True,
        fixed_overhead_s=0.0015,
        lazy_fixed_overhead_s=0.0008,
        eager_work_penalty=1.3,
        op_multipliers={
            "isna": 0.002,             # validity-bitmap scan, no per-element work
            "quantile": 0.06,
            "sort": 0.06,
            "stats": 0.12,
            "filter": 0.10,
            "groupby": 0.10,
            "join": 0.12,
            "pivot": 0.35,
            "dedup": 0.15,
            "elementwise": 0.12,
            "string": 0.20,
            "date": 0.30,
            "encode": 0.20,
            "fillna": 0.10,
            "dropna": 0.15,
            "cast": 1.4,               # Arrow safety checks / abstraction layers
            "read_csv": 0.10,
            "read_parquet": 0.015,
            "write_csv": 0.06,
            "write_parquet": 0.30,     # known slow Parquet writer issue
            "metadata": 1.0,
        },
        resident_fraction=1.0,                # strict in-memory execution model
        pipeline_residency_multiplier=8.0,
        memory_multiplier=2.0,
        streaming_execution=True,             # lazy collect(streaming=True)
        multithreading=True,
        resource_optimization=True,
        lazy_evaluation=True,
    ),
    # ------------------------------------------------------------------ #
    # CuDF: RAPIDS GPU dataframes (single GPU).
    # ------------------------------------------------------------------ #
    "cudf": EngineProfile(
        name="cudf",
        display_name="CuDF",
        native_language="C/C++",
        licence="Apache 2.0",
        version="24.04.01",
        parallel_fraction=0.0,
        uses_gpu=True,
        fixed_overhead_s=0.0015,        # kernel launches + Python round trip
        op_multipliers={
            "isna": 0.15,
            "quantile": 0.30,          # many small reduction kernels
            "sort": 0.03,              # Thrust parallel sort
            "stats": 3.00,             # describe() launches one kernel per statistic + host sync
            "filter": 0.05,
            "groupby": 0.04,
            "join": 0.05,
            "pivot": 0.30,
            "dedup": 0.04,             # factorization-based drop_duplicates
            "elementwise": 0.04,
            "string": 0.15,
            "date": 0.25,
            "encode": 0.03,
            "fillna": 0.06,
            "dropna": 0.08,
            "cast": 0.10,
            "read_csv": 0.04,
            "read_parquet": 0.05,
            "write_csv": 0.10,
            "write_parquet": 0.12,
            "metadata": 2.0,
        },
        resident_fraction=1.0,
        pipeline_residency_multiplier=1.3,
        memory_multiplier=1.8,
        requires_gpu_memory=True,
        gpu_acceleration=True,
        resource_optimization=False,
        other_requirements="CUDA",
    ),
    # ------------------------------------------------------------------ #
    # Vaex: memory-mapped, streaming column-wise execution.
    # ------------------------------------------------------------------ #
    "vaex": EngineProfile(
        name="vaex",
        display_name="Vaex",
        native_language="C/Python",
        licence="MIT",
        version="4.17.0",
        parallel_fraction=0.85,
        fixed_overhead_s=0.003,
        op_multipliers={
            "isna": 0.40,
            "quantile": 2.5,           # min/max + cumulative sums + grid interpolation
            "sort": 0.6,
            "stats": 0.8,
            "filter": 0.12,            # tracks selections without copying
            "groupby": 4.0,            # notoriously slow grouping
            "join": 4.5,               # no multi-column join support
            "pivot": 5.0,
            "dedup": 1.8,              # no native implementation (our fallback)
            "elementwise": 0.06,       # virtual columns, zero copy
            "string": 0.15,
            "date": 0.08,              # NumPy-based date kernels
            "encode": 0.6,
            "fillna": 0.20,
            "dropna": 0.07,
            "cast": 0.5,
            "read_csv": 0.05,          # chunked reader + HDF5 conversion
            "read_parquet": 0.02,
            "write_csv": 0.6,
            "write_parquet": 0.25,
            "metadata": 1.0,
        },
        resident_fraction=0.05,               # memory-mapped files, zero-copy policy
        pipeline_residency_multiplier=1.0,
        memory_multiplier=6.0,                # groupby/pivot outputs held fully in memory
        streaming_ops=_COLUMNWISE_OPS,
        streaming_memory_fraction=0.15,
        streaming_execution=True,             # chunked evaluation is the native mode
        multithreading=True,
        resource_optimization=True,
    ),
    # ------------------------------------------------------------------ #
    # DataTable: native-C Frame, memory-mapped storage, sentinel nulls.
    # ------------------------------------------------------------------ #
    "datatable": EngineProfile(
        name="datatable",
        display_name="DataTable",
        native_language="C++/Python",
        licence="Mozilla Public 2.0",
        version="1.1.0",
        parallel_fraction=0.88,
        fixed_overhead_s=0.001,
        op_multipliers={
            "isna": 0.006,             # sentinel comparison, SIMD-friendly
            "quantile": 0.5,
            "sort": 0.20,
            "stats": 0.25,             # statistics computed at Frame creation
            "filter": 0.5,
            "groupby": 2.5,            # slow grouping (h2o db-benchmark)
            "join": 2.0,               # unique-key joins only, Pandas fallback otherwise
            "pivot": 0.25,
            "dedup": 1.6,              # no native implementation (our fallback)
            "elementwise": 0.4,
            "string": 0.8,
            "date": 1.2,
            "encode": 0.7,
            "fillna": 0.6,
            "dropna": 0.5,
            "cast": 0.05,              # in-place casting, direct memory manipulation
            "read_csv": 0.06,          # memory-maps the file and walks pointers
            "write_csv": 0.25,
            "metadata": 1.0,
        },
        resident_fraction=0.1,                # memory-mapped frames, copy-on-write
        pipeline_residency_multiplier=1.5,
        memory_multiplier=5.0,                # pivot/join/apply need full in-memory copies
        streaming_ops=_COLUMNWISE_OPS,
        streaming_memory_fraction=0.2,
        streaming_execution=True,             # memory-mapped chunk-wise kernels
        multithreading=True,
        resource_optimization=True,
        supports_parquet=False,
    ),
    # ------------------------------------------------------------------ #
    # DuckDB: SQL reference point for TPC-H only (not a dataframe API).
    # ------------------------------------------------------------------ #
    "duckdb": EngineProfile(
        name="duckdb",
        display_name="DuckDB",
        native_language="C++",
        licence="MIT",
        version="0.10",
        parallel_fraction=0.95,
        lazy=True,
        fixed_overhead_s=0.004,
        lazy_fixed_overhead_s=0.004,
        op_multipliers={
            "filter": 0.10,
            "groupby": 0.08,
            "join": 0.10,
            "sort": 0.08,
            "elementwise": 0.15,
            "quantile": 0.08,
            "dedup": 0.12,
            "read_csv": 0.10,
            "read_parquet": 0.02,
            "metadata": 1.0,
        },
        resident_fraction=0.2,
        pipeline_residency_multiplier=1.0,
        memory_multiplier=1.5,
        spill_to_disk=True,
        streaming_execution=True,             # vector-at-a-time pipelines
        multithreading=True,
        resource_optimization=True,
        lazy_evaluation=True,
    ),
}


def get_profile(name: str) -> EngineProfile:
    """Look up an engine profile by its short name."""
    try:
        return ENGINE_PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown engine {name!r}; available: {sorted(ENGINE_PROFILES)}"
        ) from None
