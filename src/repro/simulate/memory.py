"""Working-set accounting, spill-to-disk and simulated out-of-memory errors.

The paper's scalability study (Section 4.3, Figure 6, Table 5) is entirely
about memory behaviour: which libraries complete the full Taxi/Patrol pipeline
on a laptop, which ones spill, and which ones hit OOM at which sample size.
This module reproduces that mechanism with a two-term model:

``peak = residency + operator working set``

* the **residency** term is the fraction of the dataset the engine keeps
  resident while a pipeline runs (whole dataset for eager in-memory engines,
  almost nothing for memory-mapped Vaex/DataTable, a JVM-inflated copy for
  Pandas-on-Spark).  In pipeline scope it grows by the engine's
  ``pipeline_residency_multiplier`` — eager engines accumulate materialized
  intermediates;
* the **operator working set** is the bytes the operator actually touches
  (columns used × rows), scaled by the engine's working-set multiplier and the
  operator's peak factor (joins, sorts and pivots allocate the largest
  intermediates).  Engines that stream an operator class only keep a bounded
  window of it resident;
* engines that *spill* (Spark's disk offload, DuckDB) never OOM but report the
  spilled volume so the cost model can charge disk bandwidth;
* everything else raises :class:`SimulatedOOMError` when the peak does not fit
  in the machine's usable RAM — or in GPU memory for CuDF.
"""

from __future__ import annotations

from dataclasses import dataclass

from .hardware import MachineConfig
from .profiles import EngineProfile

__all__ = [
    "SimulatedOOMError",
    "MemoryAssessment",
    "MemoryModel",
    "OPERATOR_PEAK_FACTORS",
    "STREAM_PIPELINE_BREAKERS",
]


class SimulatedOOMError(RuntimeError):
    """Raised when the memory model determines that an operation cannot fit."""

    def __init__(self, engine: str, operation: str, required_bytes: int, budget_bytes: int,
                 device: str = "RAM"):
        self.engine = engine
        self.operation = operation
        self.required_bytes = required_bytes
        self.budget_bytes = budget_bytes
        self.device = device
        super().__init__(
            f"{engine}: {operation} needs {required_bytes / 1024 ** 3:.1f} GiB of {device}, "
            f"only {budget_bytes / 1024 ** 3:.1f} GiB available"
        )


@dataclass
class MemoryAssessment:
    """Outcome of the memory model for a single operation."""

    peak_bytes: int
    spilled_bytes: int = 0
    streamed: bool = False

    @property
    def spilled(self) -> bool:
        return self.spilled_bytes > 0


#: Extra working-set factor per operator class, on top of the engine multiplier.
#: Wide operations (join/pivot/one-hot/sort) allocate large intermediates.
OPERATOR_PEAK_FACTORS: dict[str, float] = {
    "read_csv": 1.2,
    "read_parquet": 1.0,
    "write_csv": 1.1,
    "write_parquet": 1.0,
    "metadata": 0.01,
    "isna": 0.15,
    "stats": 0.3,
    "quantile": 0.4,
    "filter": 1.0,
    "elementwise": 1.1,
    "string": 1.2,
    "date": 1.1,
    "fillna": 1.1,
    "dropna": 1.0,
    "cast": 1.2,
    "encode": 1.4,
    "sort": 2.0,
    "groupby": 1.5,
    "join": 2.2,
    "pivot": 2.0,
    "dedup": 1.6,
    "pipeline": 1.2,
}

#: Operator classes that break a morsel-driven pipeline: their input must be
#: accumulated (sorted runs, hash tables, join build sides, distinct sets)
#: before any output batch can be produced.  In streaming execution these are
#: the operators whose partitions go out-of-core when they outgrow RAM.
STREAM_PIPELINE_BREAKERS = frozenset({"sort", "groupby", "join", "dedup", "pivot"})


class MemoryModel:
    """Evaluates whether an operation fits on a machine for a given engine."""

    def __init__(self, machine: MachineConfig):
        self.machine = machine

    # ------------------------------------------------------------------ #
    def assess(
        self,
        engine: EngineProfile,
        op_class: str,
        op_bytes: int,
        dataset_bytes: int | None = None,
        pipeline_scope: bool = False,
        streaming: bool = False,
    ) -> MemoryAssessment:
        """Return the memory outcome of an operation or raise :class:`SimulatedOOMError`.

        ``op_bytes`` is the volume the operator touches (used columns × rows);
        ``dataset_bytes`` the full in-memory dataset size, which drives the
        residency term (defaults to ``op_bytes``).  ``pipeline_scope=True``
        accounts for the accumulated intermediates of a whole pipeline run.

        ``streaming=True`` prices the operator inside a morsel-driven pipeline
        (:class:`repro.plan.streaming.StreamingExecutor`): only a bounded batch
        window stays resident, so non-breaker operators shrink to the engine's
        streaming window, pipeline breakers accumulate spillable partitions,
        and CPU engines never OOM — overflow is charged as spill instead.
        """
        if dataset_bytes is None:
            dataset_bytes = op_bytes
        factor = OPERATOR_PEAK_FACTORS.get(op_class, 1.0)

        residency = dataset_bytes * engine.resident_fraction
        if streaming:
            # A streamed pipeline holds a bounded window of the dataset, not
            # the accumulated intermediates of every eager materialization.
            residency *= engine.streaming_memory_fraction
        elif pipeline_scope:
            residency *= engine.pipeline_residency_multiplier

        working_set = op_bytes * engine.memory_multiplier * factor
        streamed = False
        if streaming and op_class not in STREAM_PIPELINE_BREAKERS:
            working_set *= engine.streaming_memory_fraction
            streamed = True
        elif not streaming and op_class in engine.streaming_ops:
            working_set *= engine.streaming_memory_fraction
            streamed = True

        peak = int(residency + working_set)

        # GPU-resident engines must fit everything on the device.
        if engine.requires_gpu_memory:
            gpu = self.machine.gpu
            if gpu is None:
                raise SimulatedOOMError(engine.name, op_class, peak, 0, device="GPU")
            if peak > gpu.memory_bytes:
                raise SimulatedOOMError(engine.name, op_class, peak,
                                        gpu.memory_bytes, device="GPU")
            return MemoryAssessment(peak_bytes=peak, streamed=streamed)

        budget = self.machine.usable_ram_bytes
        if peak <= budget:
            return MemoryAssessment(peak_bytes=peak, streamed=streamed)

        if engine.spill_to_disk or streaming:
            # Streaming pipelines write overflowing breaker partitions (and
            # backed-up batches) to disk instead of dying: the out-of-core
            # degradation the new fig8 scenario measures.
            spilled = peak - budget
            return MemoryAssessment(peak_bytes=budget, spilled_bytes=spilled, streamed=streamed)

        raise SimulatedOOMError(engine.name, op_class, peak, budget)

    # ------------------------------------------------------------------ #
    def fits_operation(self, engine: EngineProfile, op_class: str, op_bytes: int,
                       dataset_bytes: int | None = None, pipeline_scope: bool = False,
                       streaming: bool = False) -> bool:
        """Boolean convenience wrapper around :meth:`assess`."""
        try:
            self.assess(engine, op_class, op_bytes, dataset_bytes, pipeline_scope,
                        streaming=streaming)
            return True
        except SimulatedOOMError:
            return False

    def fits_pipeline(self, engine: EngineProfile, dataset_bytes: int,
                      heaviest_op: str = "pivot", heavy_op_fraction: float = 0.3) -> bool:
        """True when the engine can run a full pipeline over ``dataset_bytes``.

        ``heaviest_op`` and ``heavy_op_fraction`` describe the most
        memory-hungry operator of the pipeline and the fraction of the dataset
        it touches; pipeline runners pass the real values from their
        preparator lists.
        """
        op_bytes = int(dataset_bytes * heavy_op_fraction)
        return self.fits_operation(engine, heaviest_op, op_bytes, dataset_bytes,
                                   pipeline_scope=True)
