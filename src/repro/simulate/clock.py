"""Virtual clock and execution reports.

The paper reports every measurement as the average of ten runs, trimming
values below the 20th and above the 80th percentile (footnote 5).  Because
this reproduction prices operations with a deterministic cost model rather
than timing real hardware, the "clock" is virtual: each operation contributes
its simulated seconds to the running total, per-run jitter reproduces the
measurement-noise protocol, and reports aggregate operation records exactly
the way the paper's figures do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

__all__ = ["OperationRecord", "RunReport", "VirtualClock", "trimmed_mean", "average_runs"]


def trimmed_mean(values: Iterable[float], lower: float = 0.20, upper: float = 0.80) -> float:
    """Mean of the values between the ``lower`` and ``upper`` quantiles.

    Mirrors the paper's protocol of excluding measurements below the 20th and
    above the 80th percentile before averaging.  Small samples (< 3 values)
    are averaged directly.
    """
    data = np.asarray(sorted(float(v) for v in values), dtype=np.float64)
    if data.size == 0:
        return 0.0
    if data.size < 3:
        return float(data.mean())
    lo = np.quantile(data, lower)
    hi = np.quantile(data, upper)
    kept = data[(data >= lo) & (data <= hi)]
    if kept.size == 0:
        return float(data.mean())
    return float(kept.mean())


@dataclass
class OperationRecord:
    """One priced operator execution."""

    engine: str
    operation: str
    op_class: str
    stage: str
    seconds: float
    rows: int
    columns: int
    peak_bytes: int = 0
    spilled: bool = False
    #: Simulated bytes written out-of-core (0 when the operation fit in RAM).
    spilled_bytes: int = 0
    streamed: bool = False
    lazy: bool = False


@dataclass
class RunReport:
    """All operations of one pipeline (or stage, or single-preparator) run."""

    engine: str
    label: str
    records: list[OperationRecord] = field(default_factory=list)
    failed: bool = False
    failure_reason: str = ""

    def add(self, record: OperationRecord) -> None:
        self.records.append(record)

    @property
    def total_seconds(self) -> float:
        return sum(r.seconds for r in self.records)

    @property
    def peak_bytes(self) -> int:
        return max((r.peak_bytes for r in self.records), default=0)

    @property
    def spilled_bytes(self) -> int:
        """Total simulated bytes the run wrote out-of-core."""
        return sum(r.spilled_bytes for r in self.records)

    @property
    def spilled(self) -> bool:
        return any(r.spilled for r in self.records)

    def seconds_by_stage(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for record in self.records:
            out[record.stage] = out.get(record.stage, 0.0) + record.seconds
        return out

    def seconds_by_operation(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for record in self.records:
            out[record.operation] = out.get(record.operation, 0.0) + record.seconds
        return out

    def mark_failed(self, reason: str) -> None:
        self.failed = True
        self.failure_reason = reason


class VirtualClock:
    """Accumulates simulated seconds for a sequence of operations."""

    def __init__(self) -> None:
        self._elapsed = 0.0

    @property
    def elapsed_seconds(self) -> float:
        return self._elapsed

    def advance(self, seconds: float) -> float:
        if seconds < 0:
            raise ValueError("cannot advance the clock by a negative duration")
        self._elapsed += seconds
        return self._elapsed

    def reset(self) -> None:
        self._elapsed = 0.0


def average_runs(per_run_seconds: Iterable[float]) -> float:
    """Average repeated simulated runs with the paper's trimming protocol."""
    return trimmed_mean(per_run_seconds)
