"""Analytical cost model: operator work → simulated runtime.

Every preparator / query operator executed on the substrate is also *priced*
by this model for the engine that nominally executed it.  The simulated time
of one operation is::

    time = fixed_overhead
         + (work_units × base_cost × engine_multiplier) / parallel_speedup
         + transfer_time (GPU engines)
         + spill_time (engines that offload to disk)

where ``work_units`` is the number of cells touched (or bytes for I/O
operators), ``base_cost`` is the single-threaded Pandas kernel cost for the
operator class, ``engine_multiplier`` encodes the library's relative kernel
efficiency (see :mod:`repro.simulate.profiles`) and ``parallel_speedup`` is an
Amdahl-style speedup from the machine's threads or the GPU.

The model is deliberately simple and fully documented: the goal is to
reproduce the *shape* of the paper's comparison (orderings, crossovers, OOM
boundaries), not absolute wall-clock numbers of hardware we do not have.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field

from .hardware import MachineConfig
from .memory import MemoryAssessment, MemoryModel, SimulatedOOMError
from .profiles import EngineProfile

__all__ = ["BASE_CELL_COST_NS", "BASE_BYTE_COST_NS", "SimulatedCost", "PlanCost",
           "CostModel"]

#: Single-threaded Pandas-kernel cost per cell, in nanoseconds.
BASE_CELL_COST_NS: dict[str, float] = {
    "metadata": 0.0,
    "isna": 6.0,
    "stats": 60.0,
    "quantile": 40.0,
    "filter": 8.0,
    "elementwise": 10.0,
    "string": 120.0,
    "date": 400.0,
    "fillna": 12.0,
    "dropna": 10.0,
    "cast": 15.0,
    "encode": 60.0,
    "sort": 25.0,
    "groupby": 50.0,
    "join": 60.0,
    "pivot": 80.0,
    "dedup": 70.0,
}

#: I/O operator cost per byte, in nanoseconds (single-threaded CSV parse, ...).
BASE_BYTE_COST_NS: dict[str, float] = {
    "read_csv": 25.0,
    "read_parquet": 4.0,
    "write_csv": 30.0,
    "write_parquet": 8.0,
}

#: Operator classes whose cost grows as n·log n rather than linearly.
_LOG_FACTOR_OPS = frozenset({"sort", "dedup"})

_JITTER_AMPLITUDE = 0.03


@dataclass
class SimulatedCost:
    """Simulated runtime and memory outcome of one operation."""

    seconds: float
    peak_bytes: int
    spilled_bytes: int = 0
    streamed: bool = False
    work_cells: int = 0

    @property
    def spilled(self) -> bool:
        return self.spilled_bytes > 0


@dataclass
class PlanCost:
    """Estimated cost of a whole logical plan (never executed).

    ``seconds`` sums the per-node operator estimates; ``oom`` flags plans the
    memory model predicts cannot complete on the machine (their seconds only
    cover the nodes priced before the failure — rank them as infeasible).
    ``out_stats`` carries the estimated :class:`~repro.plan.stats.TableStats`
    of the plan root so callers can chain estimation across plan segments.
    """

    seconds: float = 0.0
    peak_bytes: int = 0
    spilled_bytes: int = 0
    oom: bool = False
    per_node: list = field(default_factory=list)
    out_stats: object | None = None

    def add(self, other: "PlanCost") -> None:
        self.seconds += other.seconds
        self.peak_bytes = max(self.peak_bytes, other.peak_bytes)
        self.spilled_bytes += other.spilled_bytes
        self.oom = self.oom or other.oom
        self.per_node.extend(other.per_node)
        if other.out_stats is not None:
            self.out_stats = other.out_stats


def _deterministic_jitter(*parts: object) -> float:
    """Reproducible pseudo-noise in [-1, 1] derived from the arguments."""
    digest = hashlib.sha256("|".join(str(p) for p in parts).encode()).digest()
    return (int.from_bytes(digest[:4], "little") / 0xFFFFFFFF) * 2.0 - 1.0


class CostModel:
    """Prices operator executions for a (machine, engine) pair."""

    def __init__(self, machine: MachineConfig, memory_model: MemoryModel | None = None):
        self.machine = machine
        self.memory = memory_model or MemoryModel(machine)

    # ------------------------------------------------------------------ #
    # speedups
    # ------------------------------------------------------------------ #
    def parallel_speedup(self, engine: EngineProfile) -> float:
        """Amdahl speedup over one thread for CPU engines, GPU factor otherwise."""
        if engine.uses_gpu:
            gpu = self.machine.gpu
            return gpu.throughput_multiplier if gpu is not None else 1.0
        p = engine.parallel_fraction
        threads = max(1, self.machine.cpu_threads)
        return 1.0 / ((1.0 - p) + p / threads)

    # ------------------------------------------------------------------ #
    # pricing
    # ------------------------------------------------------------------ #
    def estimate(
        self,
        engine: EngineProfile,
        op_class: str,
        rows: int,
        cols: int,
        *,
        bytes_in: int | None = None,
        dataset_bytes: int | None = None,
        lazy: bool = False,
        run_index: int = 0,
        pipeline_scope: bool = False,
        streaming: bool = False,
    ) -> SimulatedCost:
        """Simulated cost of one operator execution.

        ``rows``/``cols`` describe the (nominal) input touched by the
        operator; ``bytes_in`` is required for I/O operators and is also used
        for memory accounting when provided; ``dataset_bytes`` is the full
        in-memory dataset size driving the residency term of the memory model.
        ``lazy=True`` applies the engine's reduced per-operation overhead (one
        planned query instead of a forced materialization per call);
        ``streaming=True`` prices the operator inside a morsel-driven pipeline
        (bounded batch windows, breakers spill instead of OOM).  Raises
        :class:`~repro.simulate.memory.SimulatedOOMError` when the operation
        cannot fit.
        """
        cells = max(0, rows) * max(1, cols)
        if bytes_in is None:
            bytes_in = cells * 8

        assessment: MemoryAssessment = self.memory.assess(
            engine, op_class, bytes_in, dataset_bytes=dataset_bytes,
            pipeline_scope=pipeline_scope, streaming=streaming,
        )

        if op_class in BASE_BYTE_COST_NS:
            base = BASE_BYTE_COST_NS[op_class]
            work_units = float(bytes_in)
        else:
            base = BASE_CELL_COST_NS.get(op_class, BASE_CELL_COST_NS["elementwise"])
            work_units = float(cells)
            if op_class in _LOG_FACTOR_OPS and rows > 2:
                work_units *= math.log2(rows) / 8.0

        per_unit_ns = base * engine.multiplier(op_class)
        speedup = self.parallel_speedup(engine)
        work_seconds = (work_units * per_unit_ns) / 1e9 / max(speedup, 1e-9)
        if engine.lazy and not lazy:
            # Forcing eager execution on a lazy-capable engine materializes
            # (and for Spark, converts) the intermediate result of every call.
            work_seconds *= engine.eager_work_penalty

        overhead = engine.fixed_overhead_s
        if lazy and engine.lazy_fixed_overhead_s is not None:
            overhead = engine.lazy_fixed_overhead_s

        transfer_seconds = 0.0
        if engine.uses_gpu and self.machine.gpu is not None and op_class in BASE_BYTE_COST_NS:
            # Host<->device transfer is paid when data enters or leaves the GPU
            # (reads and writes); between operators the frame stays resident.
            transfer_seconds = bytes_in / (self.machine.gpu.transfer_gb_per_s * 1024 ** 3)

        spill_seconds = 0.0
        if assessment.spilled_bytes:
            spill_seconds = assessment.spilled_bytes / (self.machine.disk_gb_per_s * 1024 ** 3)

        seconds = overhead + work_seconds + transfer_seconds + spill_seconds
        jitter = _deterministic_jitter(engine.name, op_class, rows, cols, run_index)
        seconds *= 1.0 + _JITTER_AMPLITUDE * jitter

        return SimulatedCost(
            seconds=max(seconds, 1e-7),
            peak_bytes=assessment.peak_bytes,
            spilled_bytes=assessment.spilled_bytes,
            streamed=assessment.streamed,
            work_cells=int(work_units),
        )

    # ------------------------------------------------------------------ #
    # plan-level estimation
    # ------------------------------------------------------------------ #
    def estimate_plan(
        self,
        engine: EngineProfile,
        plan,
        *,
        catalog=None,
        scan_stats=None,
        row_scale: float = 1.0,
        dataset_bytes: int | None = None,
        lazy: bool = True,
        streaming: bool = False,
        pipeline_scope: bool = True,
        run_index: int = 0,
    ) -> PlanCost:
        """Estimated cost of executing a whole logical plan — without running it.

        The plan's cardinalities come from the statistics layer
        (:class:`~repro.plan.stats.StatsEstimator`): ``catalog`` supplies
        :class:`~repro.plan.stats.TableStats` for ``FileScan`` paths,
        ``scan_stats`` overrides in-memory ``Scan`` leaves and ``row_scale``
        lifts physical sample counts to nominal scale.  Each node is then
        priced through :meth:`estimate` exactly like the runtime plan pricing
        (joins on probe + weighted build rows, reads on the file footprint).
        Shared subplans (common-subplan elimination) are priced once.  A
        memory-model rejection never raises here — the plan is flagged
        ``oom`` instead, so callers can rank it as infeasible.
        """
        from ..plan.stats import StatsEstimator, node_cost_inputs

        estimator = StatsEstimator(catalog=catalog, scan_stats=scan_stats,
                                   row_scale=row_scale)
        cost = PlanCost()
        visited: set[int] = set()

        def walk(node) -> None:
            if id(node) in visited:   # shared subplan: executed (and priced) once
                return
            visited.add(id(node))
            for child in node.children():
                walk(child)
            if cost.oom:
                return
            op_class, rows, cols, bytes_in = node_cost_inputs(node, estimator)
            if op_class is None:
                return
            try:
                estimated = self.estimate(
                    engine, op_class, rows, max(1, cols), bytes_in=bytes_in,
                    dataset_bytes=dataset_bytes, lazy=lazy, run_index=run_index,
                    pipeline_scope=pipeline_scope, streaming=streaming,
                )
            except SimulatedOOMError:
                cost.oom = True
                return
            cost.seconds += estimated.seconds
            cost.peak_bytes = max(cost.peak_bytes, estimated.peak_bytes)
            cost.spilled_bytes += estimated.spilled_bytes
            cost.per_node.append((node.describe(), estimated.seconds))

        walk(plan)
        cost.out_stats = estimator.estimate(plan)
        return cost
