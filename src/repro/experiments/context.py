"""Backwards-compatible re-export of the shared configuration.

:class:`~repro.config.ExperimentConfig` moved to :mod:`repro.config` so the
top-level :class:`repro.Session` facade can use it without importing the
experiment drivers; this module keeps the historical import path working.
"""

from __future__ import annotations

from ..config import ExperimentConfig

__all__ = ["ExperimentConfig"]
