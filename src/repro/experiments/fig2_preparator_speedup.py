"""Figure 2: per-preparator speedup over Pandas, call counts and stage impact.

Every preparator call of every pipeline is executed in isolation
(function-core mode, forcing materialization for lazy engines); per
preparator we report the average speedup over Pandas, the number of calls in
each of the three pipelines, and the preparator's impact on its stage (its
share of the stage runtime, computed on the Pandas baseline).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import ExperimentConfig
from ..core.metrics import impact_percentages, speedup
from ..core.preparators import get_preparator
from ..datasets.pipelines import pipeline_call_counts
from ..session import Session

__all__ = ["PreparatorSpeedupResult", "run"]


@dataclass
class PreparatorSpeedupResult:
    """Per-dataset, per-preparator speedups and metadata."""

    #: speedups[dataset][preparator][engine] -> speedup over Pandas
    speedups: dict[str, dict[str, dict[str, float]]] = field(default_factory=dict)
    #: call_counts[dataset][preparator] -> [calls in pipeline 1, 2, 3]
    call_counts: dict[str, dict[str, list[int]]] = field(default_factory=dict)
    #: impact[dataset][preparator] -> % of its stage runtime (Pandas baseline)
    impact: dict[str, dict[str, float]] = field(default_factory=dict)
    failures: list[tuple[str, str]] = field(default_factory=list)

    def best_engine(self, dataset: str, preparator: str) -> str:
        candidates = self.speedups.get(dataset, {}).get(preparator, {})
        non_baseline = {k: v for k, v in candidates.items() if k != "pandas"}
        if not non_baseline:
            return ""
        return max(non_baseline.items(), key=lambda kv: kv[1])[0]

    def format(self, dataset: str) -> str:
        lines = [f"Figure 2 — per-preparator speedup over Pandas ({dataset})"]
        for preparator, per_engine in self.speedups.get(dataset, {}).items():
            calls = self.call_counts.get(dataset, {}).get(preparator, [])
            share = self.impact.get(dataset, {}).get(preparator, 0.0)
            rendered = ", ".join(f"{e}={v:.1f}x" for e, v in per_engine.items() if e != "pandas")
            lines.append(f"  {preparator:<8} calls={calls} impact={share:.0f}%  {rendered}")
        return "\n".join(lines)


def run(config: ExperimentConfig | None = None,
        setup: Session | None = None,
        workers: int = 1, cache=None) -> PreparatorSpeedupResult:
    """Execute the Figure 2 experiment (``workers``/``cache`` as in ``Session.run``)."""
    session = setup or Session(config)
    result = PreparatorSpeedupResult()
    # the Pandas baseline always takes part, even when not selected
    engine_order = ["pandas"] + [n for n in session.engine_names if n != "pandas"]
    measurements = session.run(mode="core", engines=engine_order,
                               workers=workers, cache=cache)

    for dataset_name in session.datasets:
        result.call_counts[dataset_name] = pipeline_call_counts(dataset_name)

        # seconds[engine][preparator] -> list of per-pipeline averaged seconds
        seconds: dict[str, dict[str, list[float]]] = {}
        per_dataset = measurements.filter(dataset=dataset_name)
        for per_pipeline in per_dataset.group_by("pipeline").values():
            for engine_name, per_engine in per_pipeline.group_by("engine").items():
                if per_engine.failures():
                    result.failures.append((dataset_name, engine_name))
                    continue
                per_prep: dict[str, list[float]] = {}
                for m in per_engine:
                    per_prep.setdefault(m.step, []).append(m.seconds)
                bucket = seconds.setdefault(engine_name, {})
                for preparator, values in per_prep.items():
                    bucket.setdefault(preparator, []).append(sum(values) / len(values))

        pandas_seconds = {prep: sum(v) / len(v)
                          for prep, v in seconds.get("pandas", {}).items()}
        result.speedups[dataset_name] = {}
        for preparator, baseline_value in pandas_seconds.items():
            per_engine: dict[str, float] = {}
            for engine_name, per_prep in seconds.items():
                values = per_prep.get(preparator)
                if not values:
                    continue
                per_engine[engine_name] = speedup(baseline_value, sum(values) / len(values))
            result.speedups[dataset_name][preparator] = per_engine

        # Impact: share of the stage runtime, measured on the Pandas baseline.
        by_stage: dict[str, dict[str, float]] = {}
        for preparator, value in pandas_seconds.items():
            stage = get_preparator(preparator).stage.value
            by_stage.setdefault(stage, {})[preparator] = value
        impact: dict[str, float] = {}
        for stage_values in by_stage.values():
            impact.update(impact_percentages(stage_values))
        result.impact[dataset_name] = impact
    return result
