"""Figure 5: speedup over Pandas for the entire pipeline, eager vs lazy.

Every engine runs the three pipelines of every dataset end to end; engines
supporting lazy evaluation (SparkPD, SparkSQL, Polars) are measured in both
evaluation modes so the lazy-evaluation benefit of Section 4.2 can be
reported.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import ExperimentConfig
from ..core.metrics import speedup
from ..session import Session

__all__ = ["PipelineSpeedupResult", "run"]


@dataclass
class PipelineSpeedupResult:
    """Full-pipeline speedups, per dataset, per engine, per evaluation mode."""

    #: speedups[dataset][engine]["eager"|"lazy"] -> speedup over Pandas
    speedups: dict[str, dict[str, dict[str, float]]] = field(default_factory=dict)
    #: seconds[dataset][engine]["eager"|"lazy"] -> average seconds
    seconds: dict[str, dict[str, dict[str, float]]] = field(default_factory=dict)
    failures: list[tuple[str, str, str]] = field(default_factory=list)

    def lazy_improvement(self, dataset: str, engine: str) -> float | None:
        """Relative improvement of lazy over eager (0.2 = 20 % faster)."""
        modes = self.seconds.get(dataset, {}).get(engine, {})
        if "eager" not in modes or "lazy" not in modes or modes["eager"] <= 0:
            return None
        return (modes["eager"] - modes["lazy"]) / modes["eager"]

    def best_engine(self, dataset: str) -> str:
        candidates = {}
        for engine, modes in self.speedups.get(dataset, {}).items():
            if engine == "pandas":
                continue
            candidates[engine] = max(modes.values()) if modes else 0.0
        if not candidates:
            return ""
        return max(candidates.items(), key=lambda kv: kv[1])[0]

    def format(self) -> str:
        lines = ["Figure 5 — full pipeline speedup over Pandas (eager / lazy)"]
        for dataset, engines in self.speedups.items():
            for engine, modes in engines.items():
                eager = modes.get("eager")
                lazy = modes.get("lazy")
                rendered = f"eager={eager:.2f}x" if eager is not None else "eager=OOM"
                if lazy is not None:
                    rendered += f", lazy={lazy:.2f}x"
                lines.append(f"  {dataset:<8} {engine:<11} {rendered}")
        return "\n".join(lines)


def run(config: ExperimentConfig | None = None,
        setup: Session | None = None,
        workers: int = 1, cache=None) -> PipelineSpeedupResult:
    """Execute the Figure 5 experiment (``workers``/``cache`` as in ``Session.run``)."""
    session = setup or Session(config)
    result = PipelineSpeedupResult()
    # the Pandas baseline always takes part, even when not selected
    engine_order = ["pandas"] + [n for n in session.engine_names if n != "pandas"]
    measurements = session.run(mode="full", engines=engine_order, lazy="both",
                               workers=workers, cache=cache)

    for dataset_name in session.datasets:
        per_dataset = measurements.filter(dataset=dataset_name)
        # pipelines whose Pandas baseline hit OOM are dropped entirely
        skipped = {m.pipeline for m in per_dataset.filter(engine="pandas", failed=True)}
        per_engine_mode: dict[str, dict[str, list[float]]] = {}
        for m in per_dataset:
            if m.pipeline in skipped:
                if m.engine == "pandas":
                    result.failures.append((dataset_name, "pandas", m.pipeline))
                continue
            if m.failed:
                result.failures.append((dataset_name, m.engine, m.pipeline))
                continue
            mode = "lazy" if m.lazy else "eager"
            per_engine_mode.setdefault(m.engine, {}).setdefault(mode, []).append(m.seconds)

        pandas_values = per_engine_mode.get("pandas", {}).get("eager", [])
        if not pandas_values:
            continue
        pandas_seconds = sum(pandas_values) / len(pandas_values)
        result.seconds[dataset_name] = {}
        result.speedups[dataset_name] = {}
        for engine_name, modes in per_engine_mode.items():
            averaged = {mode: sum(values) / len(values) for mode, values in modes.items() if values}
            result.seconds[dataset_name][engine_name] = averaged
            result.speedups[dataset_name][engine_name] = {
                mode: speedup(pandas_seconds, value) for mode, value in averaged.items()
            }
    return result
