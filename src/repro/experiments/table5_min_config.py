"""Table 5: minimum machine configuration for the full pipeline per sample.

For progressively larger samples of Patrol and Taxi, the table reports the
smallest machine configuration (laptop < workstation < server) on which each
library completes the most expensive pipeline, or OOM when not even the
server suffices.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import ExperimentConfig
from ..datasets.pipelines import get_pipeline
from ..datasets.registry import generate_dataset
from ..session import Session
from ..simulate.hardware import LAPTOP, SERVER, WORKSTATION
from .fig6_scalability import DEFAULT_FRACTIONS

__all__ = ["MinConfigResult", "run"]

_MACHINE_LABELS = {"laptop": "I", "workstation": "II", "server": "III"}
_ORDERED_MACHINES = (LAPTOP, WORKSTATION, SERVER)


@dataclass
class MinConfigResult:
    """minimum[dataset][fraction][engine] -> 'I' | 'II' | 'III' | 'OOM'."""

    fractions: tuple[float, ...]
    minimum: dict[str, dict[float, dict[str, str]]] = field(default_factory=dict)

    def format(self) -> str:
        lines = ["Table 5 — minimum machine configuration per dataset sample"]
        for dataset, per_fraction in self.minimum.items():
            lines.append(f"  [{dataset}]")
            for fraction, per_engine in per_fraction.items():
                rendered = ", ".join(f"{e}={v}" for e, v in per_engine.items())
                lines.append(f"    {int(fraction * 100):>3}%  {rendered}")
        return "\n".join(lines)


def run(config: ExperimentConfig | None = None,
        datasets: tuple[str, ...] = ("patrol", "taxi"),
        fractions: tuple[float, ...] = DEFAULT_FRACTIONS,
        workers: int = 1, cache=None) -> MinConfigResult:
    """Execute the Table 5 experiment (``workers``/``cache`` as in ``Session.run``)."""
    config = config or ExperimentConfig()
    engine_names = [name for name in config.engines if name != "cudf"]
    result = MinConfigResult(fractions=tuple(fractions))

    for dataset_name in datasets:
        base = generate_dataset(dataset_name, scale=config.scale, seed=config.seed)
        pipeline = get_pipeline(dataset_name, 0)
        result.minimum[dataset_name] = {}
        for fraction in fractions:
            sample = base.sample(fraction) if fraction < 1.0 else base
            per_engine: dict[str, str] = {}
            for engine_name in engine_names:
                label = "OOM"
                for machine in _ORDERED_MACHINES:
                    session = Session(config.but(machine=machine, runs=1,
                                                 engines=(engine_name,)),
                                      datasets={dataset_name: sample})
                    measurements = session.run(mode="full", pipelines=pipeline,
                                               workers=workers, cache=cache)
                    if not measurements:  # engine unavailable on this machine
                        continue
                    if not measurements[0].failed:
                        label = _MACHINE_LABELS[machine.name]
                        break
                per_engine[engine_name] = label
            result.minimum[dataset_name][fraction] = per_engine
    return result
