"""Reproduction of the paper's static tables (Tables 1-4).

These tables do not require running pipelines: Table 1 and Table 3 are
properties of the engines, Table 2 is measured on the generated datasets and
Table 4 describes the machine configurations.  Each function returns the table
as a list of row dictionaries; :func:`format_table` renders any of them as
fixed-width text for the reports and benchmark output.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..core.compat import compatibility_table
from ..datasets.registry import table2 as _dataset_table2
from ..simulate.hardware import LAPTOP, SERVER, WORKSTATION
from ..simulate.profiles import ENGINE_ORDER, get_profile

__all__ = ["table1_features", "table2_datasets", "table3_compatibility",
           "table4_machines", "format_table"]


def table1_features() -> list[dict]:
    """Table 1: features of the compared dataframe libraries."""
    return [get_profile(name).feature_row() for name in ENGINE_ORDER]


def table2_datasets(scale: float = 0.25, seed: int = 7) -> list[dict]:
    """Table 2: features of the selected datasets (measured on samples)."""
    return _dataset_table2(scale=scale, seed=seed)


def table3_compatibility() -> list[dict]:
    """Table 3: Pandas-API compatibility of every preparator per library."""
    return compatibility_table()


def table4_machines() -> list[dict]:
    """Table 4: specifications of each machine configuration."""
    return [machine.describe() for machine in (LAPTOP, WORKSTATION, SERVER)]


def format_table(rows: Sequence[Mapping[str, object]], title: str = "") -> str:
    """Fixed-width text rendering of a list of row dictionaries."""
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    headers = list(rows[0].keys())
    cells = [[str(row.get(h, "")) for h in headers] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in cells)) for i, h in enumerate(headers)]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)
