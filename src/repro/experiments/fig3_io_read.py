"""Figure 3: average runtime for reading CSV and Parquet files per dataset.

Every engine reads every dataset in both formats (engines without Parquet
support — DataTable — are reported as unsupported, matching the "parquet not
supported" annotation in the paper's plot).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..engines.base import EngineUnavailableError
from ..simulate.memory import SimulatedOOMError
from ..simulate.clock import trimmed_mean
from .common import ExperimentSetup, prepare
from .context import ExperimentConfig

__all__ = ["IOReadResult", "run"]

FORMATS = ("csv", "parquet")


@dataclass
class IOReadResult:
    """seconds[dataset][format][engine] -> average read time."""

    seconds: dict[str, dict[str, dict[str, float]]] = field(default_factory=dict)
    unsupported: list[tuple[str, str, str]] = field(default_factory=list)

    def best_engine(self, dataset: str, file_format: str) -> str:
        candidates = self.seconds.get(dataset, {}).get(file_format, {})
        if not candidates:
            return ""
        return min(candidates.items(), key=lambda kv: kv[1])[0]

    def format(self) -> str:
        lines = ["Figure 3 — average read time (seconds, lower is better)"]
        for dataset, formats in self.seconds.items():
            for file_format, per_engine in formats.items():
                rendered = ", ".join(f"{e}={v:.2f}s" for e, v in per_engine.items())
                lines.append(f"  {dataset:<8} {file_format:<7} {rendered}")
        return "\n".join(lines)


def run(config: ExperimentConfig | None = None,
        setup: ExperimentSetup | None = None,
        operation: str = "read") -> IOReadResult:
    """Execute the Figure 3 (read) or Figure 4 (write) experiment."""
    setup = setup or prepare(config)
    result = IOReadResult()
    for dataset_name, generated in setup.datasets.items():
        sim = setup.context_for(dataset_name)
        result.seconds[dataset_name] = {}
        for file_format in FORMATS:
            per_engine: dict[str, float] = {}
            for engine_name, engine in setup.engines.items():
                try:
                    per_run = []
                    for run_index in range(setup.config.runs):
                        if operation == "read":
                            _, record = engine.read_dataset(generated.frame, sim,
                                                            file_format=file_format,
                                                            run_index=run_index)
                        else:
                            record = engine.write_dataset(generated.frame, sim,
                                                          file_format=file_format,
                                                          run_index=run_index)
                        per_run.append(record.seconds)
                    per_engine[engine_name] = trimmed_mean(per_run)
                except EngineUnavailableError:
                    result.unsupported.append((dataset_name, file_format, engine_name))
                except SimulatedOOMError:
                    result.unsupported.append((dataset_name, file_format, engine_name))
            result.seconds[dataset_name][file_format] = per_engine
    return result
