"""Figure 3: average runtime for reading CSV and Parquet files per dataset.

Every engine reads every dataset in both formats (engines without Parquet
support — DataTable — are reported as unsupported, matching the "parquet not
supported" annotation in the paper's plot).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import ExperimentConfig
from ..session import Session

__all__ = ["IOReadResult", "run"]

FORMATS = ("csv", "parquet")


@dataclass
class IOReadResult:
    """seconds[dataset][format][engine] -> average read time."""

    seconds: dict[str, dict[str, dict[str, float]]] = field(default_factory=dict)
    unsupported: list[tuple[str, str, str]] = field(default_factory=list)

    def best_engine(self, dataset: str, file_format: str) -> str:
        candidates = self.seconds.get(dataset, {}).get(file_format, {})
        if not candidates:
            return ""
        return min(candidates.items(), key=lambda kv: kv[1])[0]

    def format(self) -> str:
        lines = ["Figure 3 — average read time (seconds, lower is better)"]
        for dataset, formats in self.seconds.items():
            for file_format, per_engine in formats.items():
                rendered = ", ".join(f"{e}={v:.2f}s" for e, v in per_engine.items())
                lines.append(f"  {dataset:<8} {file_format:<7} {rendered}")
        return "\n".join(lines)


def run(config: ExperimentConfig | None = None,
        setup: Session | None = None,
        operation: str = "read",
        workers: int = 1, cache=None) -> IOReadResult:
    """Execute the Figure 3 (read) or Figure 4 (write) experiment."""
    session = setup or Session(config)
    result = IOReadResult()
    measurements = session.run(mode=operation, formats=FORMATS,
                               workers=workers, cache=cache)
    for dataset_name in session.datasets:
        result.seconds[dataset_name] = {}
        for file_format in FORMATS:
            rows = measurements.filter(dataset=dataset_name, step=file_format)
            result.seconds[dataset_name][file_format] = {m.engine: m.seconds
                                                         for m in rows.ok()}
            for m in rows.failures():
                result.unsupported.append((dataset_name, file_format, m.engine))
    return result
