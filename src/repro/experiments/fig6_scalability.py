"""Figure 6: runtime of the full pipeline on incremental samples of Taxi,
for the laptop, workstation and server configurations.

The most expensive pipeline (the first one) is run on growing samples of the
Taxi dataset for every machine configuration; engines that hit the simulated
OOM are recorded as failures, which reproduces both the curves and the OOM
markers of Figure 6.  CuDF is excluded because the smaller machine
configurations have no GPU, exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import ExperimentConfig
from ..datasets.pipelines import get_pipeline
from ..datasets.registry import generate_dataset
from ..session import Session
from ..simulate.hardware import LAPTOP, SERVER, WORKSTATION, MachineConfig

__all__ = ["ScalabilityResult", "run", "DEFAULT_FRACTIONS"]

DEFAULT_FRACTIONS = (0.01, 0.05, 0.15, 0.25, 0.50, 0.75, 1.0)
_MACHINES: tuple[MachineConfig, ...] = (LAPTOP, WORKSTATION, SERVER)


@dataclass
class ScalabilityResult:
    """seconds[machine][fraction][engine] -> runtime, or None when OOM."""

    dataset: str
    fractions: tuple[float, ...]
    seconds: dict[str, dict[float, dict[str, float | None]]] = field(default_factory=dict)

    def oom_boundary(self, machine: str, engine: str) -> float | None:
        """Smallest sample fraction at which the engine hit OOM (None = never)."""
        for fraction in self.fractions:
            value = self.seconds.get(machine, {}).get(fraction, {}).get(engine, None)
            if value is None:
                return fraction
        return None

    def completed_full(self, machine: str, engine: str) -> bool:
        value = self.seconds.get(machine, {}).get(self.fractions[-1], {}).get(engine)
        return value is not None

    def format(self) -> str:
        lines = [f"Figure 6 — full pipeline runtime on incremental {self.dataset} samples"]
        for machine, per_fraction in self.seconds.items():
            lines.append(f"  [{machine}]")
            for fraction, per_engine in per_fraction.items():
                rendered = ", ".join(
                    f"{e}={'OOM' if v is None else format(v, '.1f') + 's'}"
                    for e, v in per_engine.items())
                lines.append(f"    {int(fraction * 100):>3}%  {rendered}")
        return "\n".join(lines)


def run(config: ExperimentConfig | None = None, dataset: str = "taxi",
        fractions: tuple[float, ...] = DEFAULT_FRACTIONS,
        machines: tuple[MachineConfig, ...] = _MACHINES,
        workers: int = 1, cache=None) -> ScalabilityResult:
    """Execute the Figure 6 experiment (``workers``/``cache`` as in ``Session.run``)."""
    config = config or ExperimentConfig()
    base = generate_dataset(dataset, scale=config.scale, seed=config.seed)
    pipeline = get_pipeline(dataset, 0)
    engine_names = tuple(name for name in config.engines if name != "cudf")
    result = ScalabilityResult(dataset=dataset, fractions=tuple(fractions))

    for machine in machines:
        result.seconds[machine.name] = {}
        for fraction in fractions:
            sample = base.sample(fraction) if fraction < 1.0 else base
            session = Session(config.but(machine=machine, engines=engine_names),
                              datasets={dataset: sample})
            measurements = session.run(mode="full", pipelines=pipeline,
                                       workers=workers, cache=cache)
            result.seconds[machine.name][fraction] = {
                m.engine: (None if m.failed else m.seconds) for m in measurements
            }
    return result
