"""Figure 7: performance of the dataframe libraries on the TPC-H 10 GB queries.

All 22 queries are executed by every engine (including DuckDB, the SQL
reference point); the reported time is the simulated runtime at the nominal
scale factor 10.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import ExperimentConfig
from ..session import Session

__all__ = ["TPCHResult", "run"]


@dataclass
class TPCHResult:
    """seconds[query][engine] -> simulated runtime (inf when failed)."""

    seconds: dict[str, dict[str, float]] = field(default_factory=dict)
    rows: dict[str, dict[str, int]] = field(default_factory=dict)

    def best_engine(self, query: str) -> str:
        candidates = self.seconds.get(query, {})
        if not candidates:
            return ""
        return min(candidates.items(), key=lambda kv: kv[1])[0]

    def best_cpu_engine(self, query: str) -> str:
        candidates = {k: v for k, v in self.seconds.get(query, {}).items()
                      if k not in ("cudf", "duckdb")}
        if not candidates:
            return ""
        return min(candidates.items(), key=lambda kv: kv[1])[0]

    def geometric_mean(self, engine: str) -> float:
        import math

        values = [per_engine[engine] for per_engine in self.seconds.values()
                  if engine in per_engine and per_engine[engine] not in (0, float("inf"))]
        if not values:
            return float("inf")
        return math.exp(sum(math.log(v) for v in values) / len(values))

    def format(self) -> str:
        lines = ["Figure 7 — TPC-H 10 GB, simulated seconds per query (lower is better)"]
        for query, per_engine in self.seconds.items():
            rendered = ", ".join(f"{e}={v:.2f}" for e, v in per_engine.items())
            lines.append(f"  {query}: {rendered}")
        return "\n".join(lines)


def run(config: ExperimentConfig | None = None, physical_scale_factor: float = 0.002,
        queries: list[str] | None = None,
        workers: int = 1, cache=None) -> TPCHResult:
    """Execute the Figure 7 experiment (``workers``/``cache`` as in ``Session.run``)."""
    session = Session(config)
    measurements = session.run_tpch(queries=queries,
                                    physical_scale_factor=physical_scale_factor,
                                    workers=workers, cache=cache)
    result = TPCHResult()
    for m in measurements:
        result.seconds.setdefault(m.pipeline, {})[m.engine] = m.seconds
        result.rows.setdefault(m.pipeline, {})[m.engine] = m.rows
    return result
