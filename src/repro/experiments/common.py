"""Shared plumbing for the figure drivers: dataset/engine/runner setup."""

from __future__ import annotations

from typing import Mapping

from ..core.runner import BentoRunner
from ..datasets.base import GeneratedDataset
from ..datasets.pipelines import get_pipelines
from ..datasets.registry import generate_dataset
from ..engines.base import BaseEngine, SimulationContext
from ..engines.registry import create_engines
from ..core.pipeline import Pipeline
from .context import ExperimentConfig

__all__ = ["ExperimentSetup", "prepare"]


class ExperimentSetup:
    """Datasets, pipelines, engines and runner for one experiment run."""

    def __init__(self, config: ExperimentConfig):
        self.config = config
        self.datasets: dict[str, GeneratedDataset] = {
            name: generate_dataset(name, scale=config.scale, seed=config.seed)
            for name in config.datasets
        }
        self.pipelines: dict[str, list[Pipeline]] = {
            name: get_pipelines(name) for name in config.datasets
        }
        self.engines: dict[str, BaseEngine] = create_engines(
            list(config.engines), machine=config.machine, skip_unavailable=True,
        )
        self.runner = BentoRunner(runs=config.runs)

    # ------------------------------------------------------------------ #
    def context_for(self, dataset: "str | GeneratedDataset") -> SimulationContext:
        generated = self.datasets[dataset] if isinstance(dataset, str) else dataset
        return generated.simulation_context(self.config.machine, runs=self.config.runs)

    def pipelines_for(self, dataset: str) -> list[Pipeline]:
        return self.pipelines[dataset]

    @property
    def engine_names(self) -> list[str]:
        return list(self.engines)

    def baseline(self) -> BaseEngine:
        """The Pandas baseline engine (created on demand if not selected)."""
        if "pandas" in self.engines:
            return self.engines["pandas"]
        extra: Mapping[str, BaseEngine] = create_engines(["pandas"], self.config.machine)
        return extra["pandas"]


def prepare(config: ExperimentConfig | None = None) -> ExperimentSetup:
    """Create the setup for a configuration (default: full paper settings)."""
    return ExperimentSetup(config or ExperimentConfig())
