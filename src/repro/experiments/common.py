"""Shared plumbing for the figure drivers, now backed by the Session facade.

The historical :class:`ExperimentSetup` (datasets, pipelines, engines and
runner wired by hand) has been replaced by :class:`repro.Session`, which
exposes a superset of its attributes; the name is kept as an alias so existing
call sites keep working.
"""

from __future__ import annotations

from ..config import ExperimentConfig
from ..session import Session

__all__ = ["ExperimentSetup", "prepare"]

#: Deprecated alias: the Session facade supersedes the hand-wired setup.
ExperimentSetup = Session


def prepare(config: ExperimentConfig | None = None) -> Session:
    """Create the session for a configuration (default: full paper settings)."""
    return Session(config or ExperimentConfig())
