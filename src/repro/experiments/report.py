"""End-to-end report: regenerate every table and figure in one call.

``python -m repro.experiments.report`` prints the full reproduction report
(static tables plus all seven figures) at a configurable scale.  The same
entry point backs the EXPERIMENTS.md summary and the example scripts.
"""

from __future__ import annotations

import argparse

from ..config import ExperimentConfig
from ..session import Session
from . import (
    fig1_stage_speedup,
    fig2_preparator_speedup,
    fig3_io_read,
    fig4_io_write,
    fig5_pipeline_speedup,
    fig6_scalability,
    fig7_tpch,
    fig8_out_of_core,
    fig9_advisor,
    table5_min_config,
)
from .tables import (
    format_table,
    table1_features,
    table2_datasets,
    table3_compatibility,
    table4_machines,
)

__all__ = ["full_report", "main"]


def full_report(config: ExperimentConfig | None = None, include_tpch: bool = True,
                include_scalability: bool = True,
                workers: int = 1, cache=None) -> str:
    """Regenerate every artifact and return the formatted report.

    ``workers`` and ``cache`` are handed to every experiment driver, so the
    whole report can run on a worker pool and resume from the persistent
    result cache after an interruption.
    """
    config = config or ExperimentConfig()
    setup = Session(config)
    sections: list[str] = []

    sections.append(format_table(table1_features(), "Table 1 — library features"))
    sections.append(format_table(table2_datasets(scale=min(config.scale, 0.5), seed=config.seed),
                                 "Table 2 — dataset features"))
    sections.append(format_table(table3_compatibility(), "Table 3 — Pandas API compatibility"))
    sections.append(format_table(table4_machines(), "Table 4 — machine configurations"))

    sections.append(fig1_stage_speedup.run(setup=setup, workers=workers, cache=cache).format())
    fig2 = fig2_preparator_speedup.run(setup=setup, workers=workers, cache=cache)
    for dataset in config.datasets:
        sections.append(fig2.format(dataset))
    sections.append(fig3_io_read.run(setup=setup, workers=workers, cache=cache).format())
    sections.append(fig4_io_write.run(setup=setup, workers=workers, cache=cache).format())
    sections.append(fig5_pipeline_speedup.run(setup=setup, workers=workers, cache=cache).format())
    if include_scalability:
        sections.append(fig6_scalability.run(config, workers=workers, cache=cache).format())
        sections.append(table5_min_config.run(config, workers=workers, cache=cache).format())
        sections.append(fig8_out_of_core.run(config, workers=workers, cache=cache).format())
    if include_tpch:
        sections.append(fig7_tpch.run(config, workers=workers, cache=cache).format())
    sections.append(fig9_advisor.run(config, include_tpch=include_tpch,
                                     workers=workers, cache=cache).format())
    return "\n\n".join(sections)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description="Regenerate the paper's tables and figures")
    parser.add_argument("--scale", type=float, default=0.25,
                        help="physical sample scale (1.0 = full default samples)")
    parser.add_argument("--runs", type=int, default=2, help="simulated measurement repetitions")
    parser.add_argument("--skip-tpch", action="store_true", help="skip the TPC-H experiment")
    parser.add_argument("--skip-scalability", action="store_true",
                        help="skip Figure 6 / Table 5")
    parser.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                        help="worker-pool size for every sweep (default: 1)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="persistent result-cache location (default: disabled)")
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be at least 1")
    config = ExperimentConfig(scale=args.scale, runs=args.runs)
    from ..sweep import SweepCache

    cache = SweepCache(args.cache_dir) if args.cache_dir else None
    print(full_report(config, include_tpch=not args.skip_tpch,
                      include_scalability=not args.skip_scalability,
                      workers=args.jobs, cache=cache))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
