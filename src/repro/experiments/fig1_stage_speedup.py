"""Figure 1: average speedup over Pandas per stage (EDA, DT, DC) per dataset.

For every dataset and every stage, the three pipelines are executed in
pipeline-stage mode (lazy evaluation allowed at stage granularity for the
engines that support it); the stage runtimes are averaged over the pipelines
and reported as a speedup over the Pandas baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.metrics import speedup
from ..core.stages import Stage
from .common import ExperimentSetup, prepare
from .context import ExperimentConfig

__all__ = ["StageSpeedupResult", "run"]

_STAGES = (Stage.EDA, Stage.DT, Stage.DC)


@dataclass
class StageSpeedupResult:
    """speedups[dataset][stage][engine] -> speedup over Pandas."""

    speedups: dict[str, dict[str, dict[str, float]]] = field(default_factory=dict)
    seconds: dict[str, dict[str, dict[str, float]]] = field(default_factory=dict)
    failures: list[tuple[str, str, str]] = field(default_factory=list)

    def best_engine(self, dataset: str, stage: str) -> str:
        candidates = self.speedups.get(dataset, {}).get(stage, {})
        non_baseline = {k: v for k, v in candidates.items() if k != "pandas"}
        if not non_baseline:
            return ""
        return max(non_baseline.items(), key=lambda kv: kv[1])[0]

    def format(self) -> str:
        lines = ["Figure 1 — average speedup over Pandas per stage"]
        for dataset, stages in self.speedups.items():
            for stage, per_engine in stages.items():
                rendered = ", ".join(f"{engine}={value:.2f}x"
                                     for engine, value in per_engine.items())
                lines.append(f"  {dataset:<8} {stage:<4} {rendered}")
        return "\n".join(lines)


def run(config: ExperimentConfig | None = None,
        setup: ExperimentSetup | None = None) -> StageSpeedupResult:
    """Execute the Figure 1 experiment."""
    setup = setup or prepare(config)
    result = StageSpeedupResult()
    baseline = setup.baseline()

    for dataset_name, generated in setup.datasets.items():
        sim = setup.context_for(dataset_name)
        pipelines = setup.pipelines_for(dataset_name)
        result.speedups[dataset_name] = {}
        result.seconds[dataset_name] = {}
        for stage in _STAGES:
            stage_seconds: dict[str, list[float]] = {}
            for pipeline in pipelines:
                if not pipeline.steps_for_stage(stage):
                    continue
                baseline_timing = setup.runner.run_stage(baseline, generated.frame, pipeline,
                                                         stage, sim)
                for engine_name, engine in setup.engines.items():
                    timing = (baseline_timing if engine_name == "pandas"
                              else setup.runner.run_stage(engine, generated.frame, pipeline,
                                                          stage, sim))
                    if timing.failed:
                        result.failures.append((dataset_name, engine_name, stage.value))
                        continue
                    stage_seconds.setdefault(engine_name, []).append(timing.seconds)
            averaged = {name: sum(values) / len(values)
                        for name, values in stage_seconds.items() if values}
            if "pandas" not in averaged:
                continue
            pandas_seconds = averaged["pandas"]
            result.seconds[dataset_name][stage.value] = averaged
            result.speedups[dataset_name][stage.value] = {
                name: speedup(pandas_seconds, value) for name, value in averaged.items()
            }
    return result
