"""Figure 1: average speedup over Pandas per stage (EDA, DT, DC) per dataset.

For every dataset and every stage, the three pipelines are executed in
pipeline-stage mode (lazy evaluation allowed at stage granularity for the
engines that support it); the stage runtimes are averaged over the pipelines
and reported as a speedup over the Pandas baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import ExperimentConfig
from ..core.metrics import speedup
from ..core.stages import Stage
from ..session import Session

__all__ = ["StageSpeedupResult", "run"]

_STAGES = (Stage.EDA, Stage.DT, Stage.DC)


@dataclass
class StageSpeedupResult:
    """speedups[dataset][stage][engine] -> speedup over Pandas."""

    speedups: dict[str, dict[str, dict[str, float]]] = field(default_factory=dict)
    seconds: dict[str, dict[str, dict[str, float]]] = field(default_factory=dict)
    failures: list[tuple[str, str, str]] = field(default_factory=list)

    def best_engine(self, dataset: str, stage: str) -> str:
        candidates = self.speedups.get(dataset, {}).get(stage, {})
        non_baseline = {k: v for k, v in candidates.items() if k != "pandas"}
        if not non_baseline:
            return ""
        return max(non_baseline.items(), key=lambda kv: kv[1])[0]

    def format(self) -> str:
        lines = ["Figure 1 — average speedup over Pandas per stage"]
        for dataset, stages in self.speedups.items():
            for stage, per_engine in stages.items():
                rendered = ", ".join(f"{engine}={value:.2f}x"
                                     for engine, value in per_engine.items())
                lines.append(f"  {dataset:<8} {stage:<4} {rendered}")
        return "\n".join(lines)


def run(config: ExperimentConfig | None = None,
        setup: Session | None = None,
        workers: int = 1, cache=None) -> StageSpeedupResult:
    """Execute the Figure 1 experiment (``workers``/``cache`` as in ``Session.run``)."""
    session = setup or Session(config)
    result = StageSpeedupResult()
    measurements = session.run(mode="stage", stages=_STAGES,
                               workers=workers, cache=cache)

    for dataset_name in session.datasets:
        result.speedups[dataset_name] = {}
        result.seconds[dataset_name] = {}
        per_dataset = measurements.filter(dataset=dataset_name)
        for stage in _STAGES:
            per_stage = per_dataset.filter(stage=stage.value)
            for m in per_stage.failures():
                result.failures.append((dataset_name, m.engine, m.stage))
            # average each engine's stage runtime over the pipelines it completed
            averaged = per_stage.ok().pivot(rows="stage", cols="engine").get(stage.value, {})
            if "pandas" not in averaged:
                continue
            pandas_seconds = averaged["pandas"]
            result.seconds[dataset_name][stage.value] = averaged
            result.speedups[dataset_name][stage.value] = {
                name: speedup(pandas_seconds, value) for name, value in averaged.items()
            }
    return result
