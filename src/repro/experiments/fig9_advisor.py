"""Figure 9 (extension): how accurate is the adaptive engine advisor?

Table 5 asks "what is the minimal configuration that runs this pipeline?"
by measuring the whole matrix.  The advisor (:mod:`repro.plan.advisor`)
answers the same question from the statistics layer and the cost model alone
— nothing is executed.  This experiment quantifies how much trust that
shortcut deserves: the fig5 full-pipeline matrix (every engine ×
eager/lazy/streaming) and the fig7 TPC-H matrix are *measured*, the advisor
*predicts* the fastest configuration for every (dataset, pipeline) cell, and
each prediction is scored:

* **hit** — the predicted configuration is the measured winner, or its
  measured runtime is within ``tolerance`` (default 10%) of the winner's;
* **regret** — measured seconds of the predicted configuration minus the
  measured winner's, i.e. how much a practitioner following the advisor
  would lose versus the oracle.

The headline number is the hit rate; the supporting one is total regret in
seconds across the matrix.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field

from ..config import ExperimentConfig
from ..results import ResultSet
from ..session import Session

__all__ = ["AdvisorCell", "AdvisorAccuracyResult", "run", "DEFAULT_TOLERANCE"]

#: A prediction counts as a hit when its measured runtime is within this
#: fraction of the measured winner's (matching the acceptance criterion).
DEFAULT_TOLERANCE = 0.10


@dataclass
class AdvisorCell:
    """One (dataset, pipeline) cell: the prediction versus the measurement."""

    dataset: str
    pipeline: str
    predicted: tuple[str, str]          # (engine, strategy)
    winner: tuple[str, str]
    winner_seconds: float
    predicted_seconds: float            # measured seconds of the prediction
    hit: bool

    @property
    def measured(self) -> bool:
        """Whether the predicted configuration has a measured runtime.

        A prediction can go unmeasured when its cell failed (e.g. OOMed) or
        was not part of the sweep; such cells are misses but contribute no
        regret — there is no measured runtime to charge.
        """
        return self.predicted_seconds != float("inf")

    @property
    def regret_seconds(self) -> float:
        if not self.measured:
            return 0.0
        return max(0.0, self.predicted_seconds - self.winner_seconds)

    def describe(self) -> str:
        where = f"{self.dataset}/{self.pipeline}"
        pred = "/".join(self.predicted)
        if self.predicted == self.winner:
            return f"{where}: {pred} (exact, {self.winner_seconds:.3f}s)"
        win = "/".join(self.winner)
        mark = "hit" if self.hit else "MISS"
        if not self.measured:
            return (f"{where}: predicted {pred} (unmeasured — cell failed) "
                    f"vs winner {win} ({self.winner_seconds:.3f}s) — {mark}")
        return (f"{where}: predicted {pred} ({self.predicted_seconds:.3f}s) "
                f"vs winner {win} ({self.winner_seconds:.3f}s) — "
                f"{mark}, regret {self.regret_seconds:.3f}s")


@dataclass
class AdvisorAccuracyResult:
    """Predicted-vs-measured winners over the fig5 (+fig7) matrices."""

    machine: str
    scale: float
    tolerance: float = DEFAULT_TOLERANCE
    cells: list[AdvisorCell] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    @property
    def hits(self) -> int:
        return sum(1 for cell in self.cells if cell.hit)

    @property
    def exact(self) -> int:
        return sum(1 for cell in self.cells if cell.predicted == cell.winner)

    @property
    def accuracy(self) -> float:
        return self.hits / len(self.cells) if self.cells else 0.0

    @property
    def total_regret_seconds(self) -> float:
        return sum(cell.regret_seconds for cell in self.cells)

    @property
    def max_regret_seconds(self) -> float:
        return max((cell.regret_seconds for cell in self.cells), default=0.0)

    def misses(self) -> list[AdvisorCell]:
        return [cell for cell in self.cells if not cell.hit]

    # ------------------------------------------------------------------ #
    def format(self) -> str:
        lines = [f"Figure 9 — advisor accuracy on {self.machine} "
                 f"(scale {self.scale:g}, tolerance {self.tolerance:.0%})"]
        for cell in self.cells:
            lines.append("  " + cell.describe())
        if self.cells:
            lines.append(f"  => {self.hits}/{len(self.cells)} hits "
                         f"({self.accuracy:.0%}, {self.exact} exact), "
                         f"total regret {self.total_regret_seconds:.3f}s, "
                         f"max {self.max_regret_seconds:.3f}s")
        return "\n".join(lines)


def _measured_means(results: ResultSet) -> dict[tuple[str, str, str, str], float]:
    """Mean measured seconds per (dataset, pipeline, engine, strategy)."""
    sums: dict[tuple[str, str, str, str], list[float]] = {}
    for m in results.ok():
        sums.setdefault((m.dataset, m.pipeline, m.engine, m.strategy), []).append(m.seconds)
    return {key: sum(vals) / len(vals) for key, vals in sums.items()}


def _score(result: AdvisorAccuracyResult, reports, results: ResultSet) -> None:
    """Append one scored cell per advisor report that was also measured."""
    winners = results.winners(by=("dataset", "pipeline"))
    measured = _measured_means(results)
    for report in reports:
        winner = winners.get((report.dataset, report.pipeline))
        best = report.best
        if winner is None or best is None:
            continue
        predicted = (best.engine, best.strategy)
        winner_key = (winner.engine, winner.strategy)
        predicted_seconds = measured.get(
            (report.dataset, report.pipeline) + predicted, float("inf"))
        hit = (predicted == winner_key
               or predicted_seconds <= winner.seconds * (1.0 + result.tolerance))
        result.cells.append(AdvisorCell(
            dataset=report.dataset, pipeline=report.pipeline,
            predicted=predicted, winner=winner_key,
            winner_seconds=winner.seconds, predicted_seconds=predicted_seconds,
            hit=hit))


def run(config: ExperimentConfig | None = None, *, include_tpch: bool = True,
        queries: list[str] | None = None, tolerance: float = DEFAULT_TOLERANCE,
        workers: int = 1, cache=None) -> AdvisorAccuracyResult:
    """Execute the advisor-accuracy experiment.

    The fig5 full-pipeline matrix is measured under all three strategies
    (``lazy="both"``, ``streaming="both"``), TPC-H under the Figure 7
    protocol; the advisor then predicts each cell from statistics alone and
    every prediction is scored against the measured winner.
    """
    config = config or ExperimentConfig()
    session = Session(config)
    result = AdvisorAccuracyResult(machine=config.machine.name,
                                   scale=config.scale, tolerance=tolerance)

    pipeline_results = session.run(mode="full", lazy="both", streaming="both",
                                   workers=workers, cache=cache)
    _score(result, session.advise(), pipeline_results)

    if include_tpch:
        tpch_results = session.run_tpch(queries=queries, workers=workers,
                                        cache=cache)
        _score(result, session.advise_tpch(queries=queries), tpch_results)
    return result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Figure 9: advisor accuracy (predicted vs measured winner)")
    parser.add_argument("--scale", type=float, default=0.25,
                        help="physical sample scale (default: 0.25)")
    parser.add_argument("--runs", type=int, default=2,
                        help="simulated measurement repetitions (default: 2)")
    parser.add_argument("--queries", default=None,
                        help="comma-separated TPC-H subset (default: all 22)")
    parser.add_argument("--skip-tpch", action="store_true",
                        help="score only the full-pipeline matrix")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="regret fraction still counted as a hit (default: 0.10)")
    parser.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                        help="worker-pool size for the measured sweeps")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="persistent result-cache location (default: disabled)")
    args = parser.parse_args(argv)
    from ..sweep import SweepCache

    cache = SweepCache(args.cache_dir) if args.cache_dir else None
    queries = ([q.strip() for q in args.queries.split(",") if q.strip()]
               if args.queries else None)
    result = run(ExperimentConfig(scale=args.scale, runs=args.runs),
                 include_tpch=not args.skip_tpch, queries=queries,
                 tolerance=args.tolerance, workers=args.jobs, cache=cache)
    print(result.format())
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
