"""Experiment drivers: one module per table / figure of the paper.

* Tables 1-4: :mod:`repro.experiments.tables`
* Figure 1:   :mod:`repro.experiments.fig1_stage_speedup`
* Figure 2:   :mod:`repro.experiments.fig2_preparator_speedup`
* Figure 3:   :mod:`repro.experiments.fig3_io_read`
* Figure 4:   :mod:`repro.experiments.fig4_io_write`
* Figure 5:   :mod:`repro.experiments.fig5_pipeline_speedup`
* Figure 6:   :mod:`repro.experiments.fig6_scalability`
* Table 5:    :mod:`repro.experiments.table5_min_config`
* Figure 7:   :mod:`repro.experiments.fig7_tpch`
* Figure 8:   :mod:`repro.experiments.fig8_out_of_core` (extension: eager vs
  streaming execution on a memory-constrained machine)
* Figure 9:   :mod:`repro.experiments.fig9_advisor` (extension: advisor
  accuracy — predicted-fastest configuration vs the measured winner)
* Everything: :mod:`repro.experiments.report`

Every driver runs its matrix slice through :class:`repro.Session` and
aggregates the returned :class:`~repro.results.ResultSet`; pass an existing
session as ``setup=`` to share generated datasets and engines across drivers.
"""

from .context import ExperimentConfig
from .common import ExperimentSetup, prepare

__all__ = ["ExperimentConfig", "ExperimentSetup", "prepare"]
