"""Figure 4: average runtime for writing CSV and Parquet files per dataset.

Shares its implementation with the read experiment (Figure 3); only the
direction of the I/O differs.
"""

from __future__ import annotations

from ..config import ExperimentConfig
from ..session import Session
from .fig3_io_read import IOReadResult, run as _run_io

__all__ = ["IOWriteResult", "run"]

#: Same result structure as the read experiment.
IOWriteResult = IOReadResult


def run(config: ExperimentConfig | None = None,
        setup: Session | None = None,
        workers: int = 1, cache=None) -> IOWriteResult:
    """Execute the Figure 4 experiment (write CSV / Parquet)."""
    return _run_io(config, setup, operation="write", workers=workers, cache=cache)
