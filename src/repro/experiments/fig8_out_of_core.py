"""Figure 8 (extension): out-of-core execution on a memory-constrained machine.

The paper's scalability study (Figure 6, Table 5) stops at the OOM boundary:
once a library's working set outgrows RAM, its cell becomes a ✕.  This
experiment goes past that boundary.  The full-pipeline matrix runs on a
machine whose RAM is deliberately too small for the nominal datasets, once
eagerly/lazily and once through the morsel-driven streaming executor
(:mod:`repro.plan.streaming`), and every engine × pipeline cell is classified:

* ``ok``    — completed within RAM;
* ``spill`` — completed, but pipeline-breaker partitions (or a spill-to-disk
  engine's overflow) went to disk;
* ``oom``   — raised :class:`~repro.simulate.memory.SimulatedOOMError`.

The headline result mirrors what Polars' streaming engine and Spark deliver in
practice: cells that OOM under eager execution complete under streaming, at
the price of disk-bandwidth time for the spilled volume.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from ..config import ExperimentConfig
from ..results import Measurement
from ..session import Session
from ..simulate.hardware import LAPTOP, MachineConfig

__all__ = ["OutOfCoreResult", "constrained_machine", "run", "DEFAULT_MEMORY_GB"]

#: RAM cap (GiB) of the default fig8 machine: far below the nominal Taxi
#: footprint, so every eager in-memory engine OOMs.
DEFAULT_MEMORY_GB = 8.0


def constrained_machine(base: MachineConfig = LAPTOP,
                        memory_gb: float = DEFAULT_MEMORY_GB) -> MachineConfig:
    """A copy of ``base`` with its RAM capped at ``memory_gb`` GiB."""
    return dataclasses.replace(base, name=f"{base.name}-{memory_gb:g}gb",
                               ram_gb=memory_gb)


def _classify(measurement: Measurement) -> str:
    if measurement.failed:
        return "oom"
    return "spill" if measurement.spilled else "ok"


@dataclass
class OutOfCoreResult:
    """outcome[(engine, pipeline, strategy)] -> 'ok' | 'spill' | 'oom'."""

    dataset: str
    machine: str
    memory_gb: float
    outcomes: dict[tuple[str, str, str], str] = field(default_factory=dict)
    seconds: dict[tuple[str, str, str], float] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    def engines(self) -> list[str]:
        seen: dict[str, None] = {}
        for engine, _, _ in self.outcomes:
            seen.setdefault(engine, None)
        return list(seen)

    def pipelines(self) -> list[str]:
        seen: dict[str, None] = {}
        for _, pipeline, _ in self.outcomes:
            seen.setdefault(pipeline, None)
        return list(seen)

    def outcome(self, engine: str, pipeline: str, strategy: str) -> str | None:
        return self.outcomes.get((engine, pipeline, strategy))

    def rescued_cells(self) -> list[tuple[str, str]]:
        """(engine, pipeline) cells that OOM eagerly but complete streaming."""
        rescued = []
        for pipeline in self.pipelines():
            for engine in self.engines():
                eager = self.outcomes.get((engine, pipeline, "eager"),
                                          self.outcomes.get((engine, pipeline, "lazy")))
                streamed = self.outcomes.get((engine, pipeline, "streaming"))
                if eager == "oom" and streamed in ("ok", "spill"):
                    rescued.append((engine, pipeline))
        return rescued

    def counts(self, strategy: str) -> dict[str, int]:
        out = {"ok": 0, "spill": 0, "oom": 0}
        for (engine, pipeline, cell_strategy), outcome in self.outcomes.items():
            if cell_strategy == strategy:
                out[outcome] += 1
        return out

    # ------------------------------------------------------------------ #
    def format(self) -> str:
        marks = {"ok": "ok", "spill": "spill", "oom": "OOM", None: "-"}
        lines = [f"Figure 8 — out-of-core execution of {self.dataset} pipelines "
                 f"on {self.machine} ({self.memory_gb:g} GiB RAM)"]
        for pipeline in self.pipelines():
            lines.append(f"  [{pipeline}]")
            for strategy in ("eager", "lazy", "streaming"):
                cells = []
                for engine in self.engines():
                    outcome = self.outcomes.get((engine, pipeline, strategy))
                    if outcome is None and strategy != "streaming":
                        continue
                    rendered = marks[outcome]
                    if outcome in ("ok", "spill"):
                        rendered += f" {self.seconds[(engine, pipeline, strategy)]:.0f}s"
                    cells.append(f"{engine}={rendered}")
                if cells:
                    lines.append(f"    {strategy:>9}  " + ", ".join(cells))
        rescued = self.rescued_cells()
        if rescued:
            lines.append("  rescued by streaming (eager OOM -> streamed completion): "
                         + ", ".join(f"{e}/{p}" for e, p in rescued))
        return "\n".join(lines)


def run(config: ExperimentConfig | None = None, dataset: str = "taxi",
        memory_gb: float = DEFAULT_MEMORY_GB,
        base_machine: MachineConfig = LAPTOP,
        workers: int = 1, cache=None) -> OutOfCoreResult:
    """Execute the out-of-core experiment.

    The configured engines (minus CuDF — the constrained machine has no GPU)
    run every registered pipeline of ``dataset`` on a ``memory_gb``-GiB
    machine under all three strategies (``streaming="both"``); each cell is
    classified as ok / spill / oom.
    """
    config = config or ExperimentConfig()
    machine = constrained_machine(base_machine, memory_gb)
    engine_names = tuple(name for name in config.engines if name != "cudf")
    session = Session(config.but(machine=machine, engines=engine_names,
                                 datasets=[dataset]))
    measurements = session.run(mode="full", lazy=False, streaming="both",
                               workers=workers, cache=cache)
    result = OutOfCoreResult(dataset=dataset, machine=base_machine.name,
                             memory_gb=memory_gb)
    for m in measurements:
        key = (m.engine, m.pipeline, m.strategy)
        result.outcomes[key] = _classify(m)
        if not m.failed:
            result.seconds[key] = m.seconds
    return result
