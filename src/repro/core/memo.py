"""Substrate memoization for the sweep's batch execution tier.

The benchmark matrix is massively redundant at the *physical* layer: every
engine executes every pipeline on the same substrate sample (that is the
paper's design — engines differ in *pricing* and in which physical path they
take, while results are pinned identical), and every cell repeats its runs on
identical deterministic inputs.  A :class:`SubstrateMemo` caches the outcome
of physical substrate executions inside one batch-execution context (a worker
process, or one batched thread sweep) so that:

* the ``runs`` repetitions of a cell execute the pipeline **once** and serve
  runs 2..N from the memo — pricing still happens per run (the cost model's
  deterministic per-run jitter depends on ``run_index``), so measurements are
  bit-identical to unmemoized execution;
* engines sharing a physical execution path (the whole-frame ``plain`` path
  for most engines; Modin's partitioned path; Vaex's chunked path) execute
  each (frame, step) pair once per context instead of once per engine.

Sharing is keyed on **execution provenance**, never on result guesses:

* frames are identified by object identity (the memo pins a strong reference,
  so ids cannot be recycled) — input frames arrive as shared objects and
  every produced frame gets its own token, so a chain of steps maps to a
  chain of keys;
* preparator steps are keyed by (input-frame token, preparator name, a stable
  digest of the call parameters, the engine's *physical path tag* — see
  :meth:`repro.engines.base.BaseEngine._preparator_path_tag`).  Identical key
  ⇒ identical code ran on identical bits ⇒ identical result;
* lazy/streaming plan segments are keyed per engine profile (cost-based
  optimization may pick different physical plans per profile), which still
  deduplicates the per-run repetitions.

The sequential scheduler path deliberately does **not** use the memo: it
remains the naive reference implementation the property tests compare every
other execution strategy against (exactly like the eager executor is the
reference for the streaming one).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Mapping

__all__ = ["SubstrateMemo"]

#: Entries kept per memo before least-recently-used eviction.  Eviction only
#: costs speed (the computation reruns), never correctness.
_DEFAULT_CAPACITY = 1024


def _stable_digest(value: Any) -> str:
    """Deterministic in-process digest of JSON-ish parameter structures.

    Anything non-JSON-ish (callables, custom objects) degrades to an
    identity-based key — conservative: such steps simply never share.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return repr(value)
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(_stable_digest(v) for v in value) + "]"
    if isinstance(value, Mapping):
        items = sorted((str(k), _stable_digest(v)) for k, v in value.items())
        return "{" + ",".join(f"{k}:{v}" for k, v in items) + "}"
    if isinstance(value, (set, frozenset)):
        return "{" + ",".join(sorted(_stable_digest(v) for v in value)) + "}"
    return f"@{type(value).__name__}:{id(value):x}"


class SubstrateMemo:
    """Content/provenance-keyed cache of substrate executions.

    Thread-safe: one memo is shared by every worker thread of a batched
    thread sweep.  Two threads may race to compute the same key; both compute
    (identical, deterministic) results and the last store wins — correct, and
    cheaper than per-key locking for this workload.
    """

    def __init__(self, capacity: int = _DEFAULT_CAPACITY):
        self.capacity = capacity
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        self._tokens: dict[int, str] = {}
        self._pinned: dict[int, Any] = {}  # strong refs keep ids stable
        self._next_token = 0
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------ #
    def token_for(self, frame: Any) -> str:
        """Identity token of a frame (stable for the memo's lifetime)."""
        with self._lock:
            token = self._tokens.get(id(frame))
            if token is None:
                token = f"f{self._next_token}"
                self._next_token += 1
                self._tokens[id(frame)] = token
                self._pinned[id(frame)] = frame
            return token

    def _get(self, key: str) -> Any:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                return self._entries[key]
            self.misses += 1
            return None

    def _put(self, key: str, value: Any) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    # ------------------------------------------------------------------ #
    def preparator_result(self, engine, preparator, frame,
                          params: Mapping[str, Any]):
        """One ``_execute_preparator`` call, deduplicated by provenance."""
        from ..frame.backends import active_backend

        tag = engine._preparator_path_tag(preparator, frame)
        # the active backend shapes the produced frame's physical columns
        # (string kernels under "dict" emit dictionary-encoded outputs), so
        # executions under different backends must never share an entry
        key = (f"prep|{self.token_for(frame)}|{preparator.name}"
               f"|{_stable_digest(dict(params))}|{tag}|{active_backend()}")
        cached = self._get(key)
        if cached is not None:
            return cached
        result = engine._execute_preparator(preparator, frame, params)
        self.token_for(result.frame)  # pin the output so the chain continues
        self._put(key, result)
        return result

    def collect_plan(self, engine, base_frame, segment_key: str,
                     compute: Callable[[], tuple]):
        """One lazy/streaming plan-segment collection, deduplicated.

        ``segment_key`` must pin everything that shapes the physical plan and
        its execution: the deferred steps, the optimizer settings, the engine
        profile (cost-based optimization arbitrates with it) and the machine.
        The cached value is the ``(collected frame, ExecutionStats)`` pair;
        stats are only read downstream (pricing), never mutated.
        """
        from ..frame.backends import active_backend

        key = f"plan|{self.token_for(base_frame)}|{segment_key}|{active_backend()}"
        cached = self._get(key)
        if cached is not None:
            return cached
        collected, stats = compute()
        self.token_for(collected)
        self._put(key, (collected, stats))
        return collected, stats

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {"hits": self.hits, "misses": self.misses,
                    "entries": len(self._entries)}

    def __repr__(self) -> str:  # pragma: no cover
        return (f"SubstrateMemo(entries={len(self._entries)}, "
                f"hits={self.hits}, misses={self.misses})")
