"""The 27 preparators of the Bento framework (paper Table 3).

A :class:`Preparator` couples:

* the paper's short name (``isna``, ``outlier``, ``calccol``, ...) and stage;
* the cost-model operator class used to price it;
* an ``apply`` function that executes it eagerly on a substrate
  :class:`~repro.frame.frame.DataFrame`;
* optionally a ``lazy_builder`` that appends the equivalent node(s) to a
  :class:`~repro.plan.builder.LazyFrame` — preparators without one force
  materialization, exactly like the libraries whose API lacks a lazy variant;
* a ``touched_columns`` helper used by the cost and memory models to know how
  much data the operator actually reads.

Preparator names follow the convention of Hameed and Naumann adopted by the
paper.  Parameters are plain JSON-compatible dictionaries so pipelines can be
declared in configuration files.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

from ..frame.dtypes import parse_dtype
from ..frame.errors import FrameError
from ..frame.frame import DataFrame
from ..plan.builder import LazyFrame
from .expr_spec import parse_expression
from .stages import Stage

__all__ = ["Preparator", "PreparatorResult", "PREPARATORS", "get_preparator", "PREPARATOR_NAMES"]


@dataclass
class PreparatorResult:
    """Outcome of applying one preparator."""

    #: The frame that continues down the pipeline (input frame if the
    #: preparator is an inspection that does not transform the data).
    frame: DataFrame
    #: Side output for inspection preparators (statistics, column lists, ...).
    output: Any = None
    #: Whether the preparator replaced the pipeline's current frame.
    chained: bool = True


@dataclass
class Preparator:
    """One Bento preparator."""

    name: str
    long_name: str
    stage: Stage
    op_class: str
    apply: Callable[[DataFrame, Mapping[str, Any]], PreparatorResult]
    touched_columns: Callable[[DataFrame, Mapping[str, Any]], list[str]]
    lazy_builder: Callable[[LazyFrame, Mapping[str, Any]], LazyFrame] | None = None

    @property
    def supports_lazy(self) -> bool:
        return self.lazy_builder is not None

    def __repr__(self) -> str:  # pragma: no cover
        return f"Preparator({self.name}, stage={self.stage})"


# --------------------------------------------------------------------------- #
# parameter helpers
# --------------------------------------------------------------------------- #
def _as_list(value: "str | Sequence[str] | None") -> list[str]:
    if value is None:
        return []
    return [value] if isinstance(value, str) else list(value)


def _existing(frame: DataFrame, names: Sequence[str]) -> list[str]:
    return [n for n in names if n in frame.columns]


def _all_columns(frame: DataFrame, params: Mapping[str, Any]) -> list[str]:
    return frame.columns


def _param_columns(key: str, fallback_all: bool = True):
    def picker(frame: DataFrame, params: Mapping[str, Any]) -> list[str]:
        names = _existing(frame, _as_list(params.get(key)))
        if names:
            return names
        return frame.columns if fallback_all else []
    return picker


def _numeric_columns(frame: DataFrame) -> list[str]:
    return [n for n, d in frame.dtypes.items() if d.is_numeric]


def _string_columns(frame: DataFrame) -> list[str]:
    return [n for n, d in frame.dtypes.items() if d.value in ("string", "categorical")]


def _first_existing(frame: DataFrame, name: str | None, candidates: list[str]) -> str | None:
    if name and name in frame.columns:
        return name
    return candidates[0] if candidates else None


# --------------------------------------------------------------------------- #
# EDA preparators
# --------------------------------------------------------------------------- #
def _apply_isna(frame: DataFrame, params: Mapping[str, Any]) -> PreparatorResult:
    return PreparatorResult(frame, output=frame.isna(), chained=False)


def _apply_outlier(frame: DataFrame, params: Mapping[str, Any]) -> PreparatorResult:
    column = _first_existing(frame, params.get("column"), _numeric_columns(frame))
    if column is None:
        return PreparatorResult(frame, output=None, chained=False)
    mask = frame.locate_outliers(column, factor=float(params.get("factor", 1.5)),
                                 approximate=bool(params.get("approximate", False)))
    return PreparatorResult(frame, output=mask, chained=False)


def _apply_srchptn(frame: DataFrame, params: Mapping[str, Any]) -> PreparatorResult:
    column = _first_existing(frame, params.get("column"), _string_columns(frame))
    if column is None:
        return PreparatorResult(frame, output=frame.head(0), chained=False)
    matched = frame.search_pattern(column, str(params.get("pattern", ".")),
                                   regex=bool(params.get("regex", True)))
    return PreparatorResult(frame, output=matched, chained=False)


def _apply_sort(frame: DataFrame, params: Mapping[str, Any]) -> PreparatorResult:
    by = _existing(frame, _as_list(params.get("by"))) or frame.columns[:1]
    ascending = params.get("ascending", True)
    return PreparatorResult(frame.sort_values(by, ascending))


def _apply_getcols(frame: DataFrame, params: Mapping[str, Any]) -> PreparatorResult:
    return PreparatorResult(frame, output=frame.columns, chained=False)


def _apply_dtypes(frame: DataFrame, params: Mapping[str, Any]) -> PreparatorResult:
    return PreparatorResult(frame, output={k: v.value for k, v in frame.dtypes.items()}, chained=False)


def _apply_stats(frame: DataFrame, params: Mapping[str, Any]) -> PreparatorResult:
    return PreparatorResult(frame, output=frame.describe(
        approximate_quantiles=bool(params.get("approximate", False))), chained=False)


def _apply_query(frame: DataFrame, params: Mapping[str, Any]) -> PreparatorResult:
    expression = parse_expression(params["predicate"])
    mask = expression.evaluate(frame)
    return PreparatorResult(frame.filter(mask))


def _lazy_query(lazy: LazyFrame, params: Mapping[str, Any]) -> LazyFrame:
    return lazy.filter(parse_expression(params["predicate"]))


def _lazy_sort(lazy: LazyFrame, params: Mapping[str, Any]) -> LazyFrame:
    by = _as_list(params.get("by"))
    if not by:
        return lazy
    return lazy.sort(by, params.get("ascending", True))


# --------------------------------------------------------------------------- #
# DT preparators
# --------------------------------------------------------------------------- #
def _apply_cast(frame: DataFrame, params: Mapping[str, Any]) -> PreparatorResult:
    mapping = {k: parse_dtype(v) for k, v in dict(params.get("columns", {})).items()
               if k in frame.columns}
    return PreparatorResult(frame.cast(mapping) if mapping else frame)


def _apply_drop(frame: DataFrame, params: Mapping[str, Any]) -> PreparatorResult:
    names = _existing(frame, _as_list(params.get("columns")))
    return PreparatorResult(frame.drop(names) if names else frame)


def _apply_rename(frame: DataFrame, params: Mapping[str, Any]) -> PreparatorResult:
    mapping = {k: v for k, v in dict(params.get("mapping", {})).items() if k in frame.columns}
    return PreparatorResult(frame.rename(mapping) if mapping else frame)


def _apply_pivot(frame: DataFrame, params: Mapping[str, Any]) -> PreparatorResult:
    index = _first_existing(frame, params.get("index"), _string_columns(frame) or frame.columns)
    columns = _first_existing(frame, params.get("columns"),
                              [c for c in _string_columns(frame) if c != index] or frame.columns)
    values = _first_existing(frame, params.get("values"), _numeric_columns(frame))
    if index is None or columns is None or values is None or index == columns:
        return PreparatorResult(frame, output=None, chained=False)
    pivoted = frame.pivot_table(index, columns, values, str(params.get("aggfunc", "mean")))
    return PreparatorResult(frame, output=pivoted, chained=False)


def _apply_calccol(frame: DataFrame, params: Mapping[str, Any]) -> PreparatorResult:
    target = str(params.get("target", "derived"))
    expression = parse_expression(params["expression"])
    return PreparatorResult(frame.with_column(target, expression.evaluate(frame)))


def _lazy_calccol(lazy: LazyFrame, params: Mapping[str, Any]) -> LazyFrame:
    return lazy.with_column(str(params.get("target", "derived")),
                            parse_expression(params["expression"]))


def _apply_join(frame: DataFrame, params: Mapping[str, Any]) -> PreparatorResult:
    """Join the current frame with an aggregate of itself.

    Kaggle pipelines typically join the working dataframe with a small
    aggregate (per-group statistics); the ``with`` parameter describes that
    aggregate: ``{"by": [...], "agg": {col: fn}}``.
    """
    spec = dict(params.get("with", {}))
    keys = _existing(frame, _as_list(spec.get("by") or params.get("on")))
    if not keys:
        return PreparatorResult(frame, chained=False)
    agg = {k: v for k, v in dict(spec.get("agg", {})).items() if k in frame.columns}
    if not agg:
        numeric = [c for c in _numeric_columns(frame) if c not in keys]
        if not numeric:
            return PreparatorResult(frame, chained=False)
        agg = {numeric[0]: "mean"}
    right = frame.group_agg(keys, agg)
    rename = {name: f"{name}_{fn}_by_{'_'.join(keys)}" if isinstance(fn, str) else name
              for name, fn in agg.items()}
    right = right.rename(rename)
    joined = frame.join(right, on=keys, how=str(params.get("how", "left")))
    return PreparatorResult(joined)


def _apply_onehot(frame: DataFrame, params: Mapping[str, Any]) -> PreparatorResult:
    column = _first_existing(frame, params.get("column"), _string_columns(frame))
    if column is None:
        return PreparatorResult(frame, chained=False)
    encoded = frame.one_hot_encode(column, max_categories=int(params.get("max_categories", 32)))
    return PreparatorResult(encoded)


def _apply_catenc(frame: DataFrame, params: Mapping[str, Any]) -> PreparatorResult:
    names = _existing(frame, _as_list(params.get("columns"))) or _string_columns(frame)[:1]
    return PreparatorResult(frame.categorical_encode(names) if names else frame)


def _apply_group(frame: DataFrame, params: Mapping[str, Any]) -> PreparatorResult:
    keys = _existing(frame, _as_list(params.get("by"))) or frame.columns[:1]
    agg = {k: v for k, v in dict(params.get("agg", {})).items() if k in frame.columns}
    if not agg:
        numeric = [c for c in _numeric_columns(frame) if c not in keys]
        agg = {numeric[0]: "mean"} if numeric else {keys[0]: "count"}
    grouped = frame.group_agg(keys, agg)
    if bool(params.get("replace", False)):
        return PreparatorResult(grouped)
    return PreparatorResult(frame, output=grouped, chained=False)


def _lazy_group(lazy: LazyFrame, params: Mapping[str, Any]) -> "LazyFrame | None":
    if not bool(params.get("replace", False)):
        # Aggregation used for inspection only: the engine must materialize
        # and run it eagerly (returning None signals "cannot defer").
        return None
    keys = _as_list(params.get("by"))
    return lazy.group_agg(keys, dict(params.get("agg", {})))


# --------------------------------------------------------------------------- #
# DC preparators
# --------------------------------------------------------------------------- #
def _apply_chdate(frame: DataFrame, params: Mapping[str, Any]) -> PreparatorResult:
    names = _existing(frame, _as_list(params.get("columns")))
    if not names:
        return PreparatorResult(frame, chained=False)
    if params.get("output_format"):
        parsed = frame.parse_dates(names, params.get("format"))
        return PreparatorResult(parsed.format_dates(names, str(params["output_format"])))
    return PreparatorResult(frame.parse_dates(names, params.get("format")))


def _apply_dropna(frame: DataFrame, params: Mapping[str, Any]) -> PreparatorResult:
    subset = _existing(frame, _as_list(params.get("subset"))) or None
    return PreparatorResult(frame.dropna(subset=subset, how=str(params.get("how", "any"))))


def _lazy_dropna(lazy: LazyFrame, params: Mapping[str, Any]) -> LazyFrame:
    subset = _as_list(params.get("subset")) or None
    return lazy.drop_nulls(subset=subset, how=str(params.get("how", "any")))


def _apply_setcase(frame: DataFrame, params: Mapping[str, Any]) -> PreparatorResult:
    names = _existing(frame, _as_list(params.get("columns"))) or _string_columns(frame)[:1]
    if not names:
        return PreparatorResult(frame, chained=False)
    return PreparatorResult(frame.set_case(names, str(params.get("mode", "lower"))))


def _apply_norm(frame: DataFrame, params: Mapping[str, Any]) -> PreparatorResult:
    names = _existing(frame, _as_list(params.get("columns"))) or _numeric_columns(frame)[:1]
    if not names:
        return PreparatorResult(frame, chained=False)
    return PreparatorResult(frame.normalize(names, str(params.get("method", "minmax"))))


def _apply_dedup(frame: DataFrame, params: Mapping[str, Any]) -> PreparatorResult:
    subset = _existing(frame, _as_list(params.get("subset"))) or None
    return PreparatorResult(frame.drop_duplicates(subset=subset,
                                                  keep=str(params.get("keep", "first"))))


def _lazy_dedup(lazy: LazyFrame, params: Mapping[str, Any]) -> LazyFrame:
    subset = _as_list(params.get("subset")) or None
    return lazy.distinct(subset=subset)


def _apply_fillna(frame: DataFrame, params: Mapping[str, Any]) -> PreparatorResult:
    value = params.get("value", 0)
    if isinstance(value, Mapping):
        value = {k: v for k, v in value.items() if k in frame.columns}
        if not value:
            return PreparatorResult(frame, chained=False)
    return PreparatorResult(frame.fillna(value))


def _lazy_fillna(lazy: LazyFrame, params: Mapping[str, Any]) -> LazyFrame:
    return lazy.fill_nulls(params.get("value", 0))


def _apply_replace(frame: DataFrame, params: Mapping[str, Any]) -> PreparatorResult:
    column = _first_existing(frame, params.get("column"), _string_columns(frame))
    mapping = dict(params.get("mapping", {}))
    if column is None or not mapping:
        return PreparatorResult(frame, chained=False)
    return PreparatorResult(frame.replace_values(column, mapping))


_EDIT_FUNCTIONS: dict[str, Callable[[Any], Any]] = {
    "strip": lambda v: v.strip() if isinstance(v, str) else v,
    "upper": lambda v: v.upper() if isinstance(v, str) else v,
    "lower": lambda v: v.lower() if isinstance(v, str) else v,
    "abs": lambda v: abs(v) if isinstance(v, (int, float)) else v,
    "double": lambda v: v * 2 if isinstance(v, (int, float)) else v,
    "round": lambda v: round(v, 2) if isinstance(v, float) else v,
    "first_token": lambda v: v.split()[0] if isinstance(v, str) and v.split() else v,
}


def _apply_edit(frame: DataFrame, params: Mapping[str, Any]) -> PreparatorResult:
    column = _first_existing(frame, params.get("column"), frame.columns)
    if column is None:
        return PreparatorResult(frame, chained=False)
    if "expression" in params:
        expression = parse_expression(params["expression"])
        return PreparatorResult(frame.with_column(column, expression.evaluate(frame)))
    func = _EDIT_FUNCTIONS.get(str(params.get("function", "strip")), _EDIT_FUNCTIONS["strip"])
    return PreparatorResult(frame.edit_values(column, func))


# --------------------------------------------------------------------------- #
# I/O preparators (paths are handled by the engines / runner)
# --------------------------------------------------------------------------- #
def _apply_read(frame: DataFrame, params: Mapping[str, Any]) -> PreparatorResult:
    # The engine performs the physical read; when invoked directly on an
    # in-memory frame this preparator is the identity.
    return PreparatorResult(frame)


def _apply_write(frame: DataFrame, params: Mapping[str, Any]) -> PreparatorResult:
    return PreparatorResult(frame, chained=False)


# --------------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------------- #
def _touched_none(frame: DataFrame, params: Mapping[str, Any]) -> list[str]:
    return []


def _touched_single(key: str, fallback: Callable[[DataFrame], list[str]]):
    def picker(frame: DataFrame, params: Mapping[str, Any]) -> list[str]:
        name = params.get(key)
        if name and name in frame.columns:
            return [name]
        candidates = fallback(frame)
        return candidates[:1]
    return picker


def _touched_group(frame: DataFrame, params: Mapping[str, Any]) -> list[str]:
    keys = _existing(frame, _as_list(params.get("by"))) or frame.columns[:1]
    agg = [k for k in dict(params.get("agg", {})) if k in frame.columns]
    return list(dict.fromkeys(keys + agg))


def _touched_join(frame: DataFrame, params: Mapping[str, Any]) -> list[str]:
    spec = dict(params.get("with", {}))
    keys = _existing(frame, _as_list(spec.get("by") or params.get("on")))
    agg = [k for k in dict(spec.get("agg", {})) if k in frame.columns]
    return list(dict.fromkeys(keys + agg)) or frame.columns


def _touched_pivot(frame: DataFrame, params: Mapping[str, Any]) -> list[str]:
    names = [params.get("index"), params.get("columns"), params.get("values")]
    found = _existing(frame, [n for n in names if n])
    return found or frame.columns[:3]


def _touched_cast(frame: DataFrame, params: Mapping[str, Any]) -> list[str]:
    return _existing(frame, list(dict(params.get("columns", {})))) or frame.columns


def _touched_predicate(frame: DataFrame, params: Mapping[str, Any]) -> list[str]:
    try:
        expression = parse_expression(params.get("predicate") or params.get("expression"))
    except FrameError:
        return frame.columns
    return _existing(frame, sorted(expression.columns())) or frame.columns


PREPARATORS: dict[str, Preparator] = {}


def _register(preparator: Preparator) -> None:
    PREPARATORS[preparator.name] = preparator


_register(Preparator("read", "load dataframe", Stage.IO, "read_csv",
                     _apply_read, _all_columns))
_register(Preparator("write", "output dataframe", Stage.IO, "write_csv",
                     _apply_write, _all_columns))

_register(Preparator("isna", "locate missing values", Stage.EDA, "isna",
                     _apply_isna, _all_columns))
_register(Preparator("outlier", "locate outliers", Stage.EDA, "quantile",
                     _apply_outlier, _touched_single("column", _numeric_columns)))
_register(Preparator("srchptn", "search by pattern", Stage.EDA, "string",
                     _apply_srchptn, _touched_single("column", _string_columns)))
_register(Preparator("sort", "sort values", Stage.EDA, "sort",
                     _apply_sort, _param_columns("by"), lazy_builder=_lazy_sort))
_register(Preparator("getcols", "get columns list", Stage.EDA, "metadata",
                     _apply_getcols, _touched_none))
_register(Preparator("dtypes", "get columns types", Stage.EDA, "metadata",
                     _apply_dtypes, _touched_none))
_register(Preparator("stats", "get dataframe statistics", Stage.EDA, "stats",
                     _apply_stats, lambda f, p: _numeric_columns(f) or f.columns))
_register(Preparator("query", "query columns", Stage.EDA, "filter",
                     _apply_query, _touched_predicate, lazy_builder=_lazy_query))

_register(Preparator("cast", "cast columns types", Stage.DT, "cast",
                     _apply_cast, _touched_cast))
_register(Preparator("drop", "delete columns", Stage.DT, "metadata",
                     _apply_drop, _param_columns("columns")))
_register(Preparator("rename", "rename columns", Stage.DT, "metadata",
                     _apply_rename, lambda f, p: _existing(f, list(dict(p.get("mapping", {}))))))
_register(Preparator("pivot", "pivot table", Stage.DT, "pivot",
                     _apply_pivot, _touched_pivot))
_register(Preparator("calccol", "calculate column using expressions", Stage.DT, "elementwise",
                     _apply_calccol, _touched_predicate, lazy_builder=_lazy_calccol))
_register(Preparator("join", "join dataframes", Stage.DT, "join",
                     _apply_join, _touched_join))
_register(Preparator("onehot", "one hot encoding", Stage.DT, "encode",
                     _apply_onehot, _touched_single("column", _string_columns)))
_register(Preparator("catenc", "categorical encoding", Stage.DT, "encode",
                     _apply_catenc, _param_columns("columns")))
_register(Preparator("group", "group dataframe", Stage.DT, "groupby",
                     _apply_group, _touched_group, lazy_builder=_lazy_group))

_register(Preparator("chdate", "change date & time format", Stage.DC, "date",
                     _apply_chdate, _param_columns("columns", fallback_all=False)))
_register(Preparator("dropna", "delete empty and invalid rows", Stage.DC, "dropna",
                     _apply_dropna, _param_columns("subset"), lazy_builder=_lazy_dropna))
_register(Preparator("setcase", "set content case", Stage.DC, "string",
                     _apply_setcase, _param_columns("columns")))
_register(Preparator("norm", "normalize numeric values", Stage.DC, "elementwise",
                     _apply_norm, _param_columns("columns")))
_register(Preparator("dedup", "deduplicate rows", Stage.DC, "dedup",
                     _apply_dedup, _param_columns("subset"), lazy_builder=_lazy_dedup))
_register(Preparator("fillna", "fill empty cells", Stage.DC, "fillna",
                     _apply_fillna,
                     lambda f, p: _existing(f, list(p["value"])) if isinstance(p.get("value"), Mapping)
                     else f.columns,
                     lazy_builder=_lazy_fillna))
_register(Preparator("replace", "replace values occurrences", Stage.DC, "elementwise",
                     _apply_replace, _touched_single("column", _string_columns)))
_register(Preparator("edit", "edit & replace cell data", Stage.DC, "elementwise",
                     _apply_edit, _touched_single("column", lambda f: f.columns)))

PREPARATOR_NAMES = tuple(PREPARATORS)


def get_preparator(name: str) -> Preparator:
    """Look up a preparator by its paper short name."""
    try:
        return PREPARATORS[name]
    except KeyError:
        raise KeyError(f"unknown preparator {name!r}; available: {sorted(PREPARATORS)}") from None
