"""Pipeline specification: an ordered list of preparator invocations.

A Bento pipeline is declared either programmatically or through a JSON file
(the paper's configuration-file workflow).  Each step names a preparator and
its parameters; the stage is derived from the preparator registry.  Example::

    {
      "name": "taxi-pipeline-1",
      "dataset": "taxi",
      "steps": [
        {"preparator": "getcols"},
        {"preparator": "query",
         "params": {"predicate": {"op": ">", "left": {"col": "fare_amount"},
                                   "right": {"lit": 0}}}},
        {"preparator": "group",
         "params": {"by": ["passenger_count"], "agg": {"trip_distance": "mean"}}}
      ]
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from ..results import read_path_or_content
from .preparators import Preparator, get_preparator
from .stages import Stage

__all__ = ["PipelineStep", "Pipeline"]


@dataclass
class PipelineStep:
    """One preparator invocation inside a pipeline."""

    preparator: str
    params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Fail fast on unknown preparator names so malformed JSON is caught
        # at load time, not halfway through a benchmark run.
        get_preparator(self.preparator)

    @property
    def spec(self) -> Preparator:
        return get_preparator(self.preparator)

    @property
    def stage(self) -> Stage:
        return self.spec.stage

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"preparator": self.preparator}
        if self.params:
            out["params"] = self.params
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PipelineStep":
        if "preparator" not in data:
            raise ValueError(f"pipeline step is missing the 'preparator' key: {dict(data)}")
        return cls(str(data["preparator"]), dict(data.get("params", {})))


@dataclass
class Pipeline:
    """An ordered sequence of preparator invocations over one dataset."""

    name: str
    dataset: str
    steps: list[PipelineStep] = field(default_factory=list)
    description: str = ""

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self):
        return iter(self.steps)

    def steps_for_stage(self, stage: "Stage | str") -> list[PipelineStep]:
        stage = Stage.parse(stage)
        return [s for s in self.steps if s.stage is stage]

    def stages(self) -> list[Stage]:
        """Stages present in this pipeline, in canonical order."""
        present = {s.stage for s in self.steps}
        return [s for s in Stage.ordered() if s in present]

    def call_counts(self) -> dict[str, int]:
        """Number of calls per preparator (the ``#calls`` row of Figure 2)."""
        out: dict[str, int] = {}
        for step in self.steps:
            out[step.preparator] = out.get(step.preparator, 0) + 1
        return out

    def preparators_used(self) -> list[str]:
        seen: dict[str, None] = {}
        for step in self.steps:
            seen.setdefault(step.preparator, None)
        return list(seen)

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    def append(self, preparator: str, **params: Any) -> "Pipeline":
        """Fluent helper used by the example scripts."""
        self.steps.append(PipelineStep(preparator, dict(params)))
        return self

    def restricted_to(self, stages: Iterable["Stage | str"]) -> "Pipeline":
        """A copy containing only the steps of the given stages."""
        wanted = {Stage.parse(s) for s in stages}
        kept = [s for s in self.steps if s.stage in wanted]
        suffix = "+".join(sorted(s.value for s in wanted))
        return Pipeline(f"{self.name}[{suffix}]", self.dataset, list(kept), self.description)

    # ------------------------------------------------------------------ #
    # (de)serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "dataset": self.dataset,
            "description": self.description,
            "steps": [s.to_dict() for s in self.steps],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Pipeline":
        steps = [PipelineStep.from_dict(s) for s in data.get("steps", [])]
        return cls(
            name=str(data.get("name", "pipeline")),
            dataset=str(data.get("dataset", "")),
            steps=steps,
            description=str(data.get("description", "")),
        )

    def to_json(self, path: "str | Path | None" = None, indent: int = 2) -> str:
        text = json.dumps(self.to_dict(), indent=indent)
        if path is not None:
            Path(path).write_text(text, encoding="utf-8")
        return text

    @classmethod
    def from_json(cls, source: "str | Path") -> "Pipeline":
        """Load a pipeline from a JSON file path or a JSON string.

        Strings starting with ``{`` are parsed as JSON directly; anything else
        is treated as a path and must exist, so a mistyped file name raises a
        clear :class:`FileNotFoundError` instead of an opaque JSON error.
        """
        return cls.from_dict(json.loads(read_path_or_content(source, kind="pipeline JSON")))

    @classmethod
    def from_steps(cls, name: str, dataset: str,
                   steps: Sequence[tuple[str, Mapping[str, Any]]],
                   description: str = "") -> "Pipeline":
        """Build a pipeline from (preparator, params) tuples."""
        return cls(name, dataset,
                   [PipelineStep(p, dict(params)) for p, params in steps], description)
