"""The four data-preparation stages identified by the paper.

Every preparator belongs to exactly one stage (Section 3, "Data Preparation
Pipelines"): input/output (I/O), exploratory data analysis (EDA), data
transformation (DT) and data cleaning (DC).  Figures 1, 2 and 5 aggregate
runtimes by these stages.
"""

from __future__ import annotations

import enum

__all__ = ["Stage"]


class Stage(enum.Enum):
    """Data-preparation stage."""

    IO = "I/O"
    EDA = "EDA"
    DT = "DT"
    DC = "DC"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    @classmethod
    def ordered(cls) -> tuple["Stage", ...]:
        return (cls.IO, cls.EDA, cls.DT, cls.DC)

    @classmethod
    def parse(cls, value: "Stage | str") -> "Stage":
        if isinstance(value, Stage):
            return value
        normalized = value.strip().upper().replace("/", "")
        mapping = {"IO": cls.IO, "EDA": cls.EDA, "DT": cls.DT, "DC": cls.DC}
        if normalized in mapping:
            return mapping[normalized]
        raise ValueError(f"unknown stage {value!r}; expected one of I/O, EDA, DT, DC")
