"""Pandas-API compatibility matrix (paper Table 3).

For every (library, preparator) pair the paper reports whether the library's
API fully matches the Pandas interface (``full``), offers the operation under
a different interface (``different``), or misses it entirely so the authors
implemented it with best effort (``missing``).  The matrix below transcribes
Table 3; the simulated engines consult it to decide whether a preparator runs
natively or through the fallback path (which the cost model penalizes).
"""

from __future__ import annotations

import enum

from .preparators import PREPARATOR_NAMES

__all__ = ["Compatibility", "COMPATIBILITY_MATRIX", "compatibility", "compatibility_table",
           "coverage_fraction"]


class Compatibility(enum.Enum):
    """Support level of a preparator in a library's API."""

    FULL = "full"          # ✓✓  fully matches the Pandas interface
    DIFFERENT = "different"  # ✓  available under a different interface
    MISSING = "missing"    # ◦  absent from the API, implemented with best effort

    @property
    def symbol(self) -> str:
        return {"full": "✓✓", "different": "✓", "missing": "o"}[self.value]


_F = Compatibility.FULL
_D = Compatibility.DIFFERENT
_M = Compatibility.MISSING

#: Table 3, row by row.  Pandas itself is by definition fully compatible and
#: is therefore not listed in the paper's table; the engines add it as FULL.
COMPATIBILITY_MATRIX: dict[str, dict[str, Compatibility]] = {
    "read":    {"sparkpd": _F, "sparksql": _D, "modin": _F, "polars": _D, "cudf": _F, "vaex": _D, "datatable": _D},
    "write":   {"sparkpd": _F, "sparksql": _D, "modin": _F, "polars": _D, "cudf": _F, "vaex": _D, "datatable": _D},
    "isna":    {"sparkpd": _F, "sparksql": _M, "modin": _F, "polars": _D, "cudf": _F, "vaex": _M, "datatable": _D},
    "outlier": {"sparkpd": _F, "sparksql": _D, "modin": _F, "polars": _D, "cudf": _F, "vaex": _D, "datatable": _M},
    "srchptn": {"sparkpd": _F, "sparksql": _D, "modin": _F, "polars": _D, "cudf": _F, "vaex": _F, "datatable": _F},
    "sort":    {"sparkpd": _F, "sparksql": _D, "modin": _F, "polars": _D, "cudf": _F, "vaex": _F, "datatable": _F},
    "getcols": {"sparkpd": _F, "sparksql": _F, "modin": _F, "polars": _F, "cudf": _F, "vaex": _D, "datatable": _D},
    "dtypes":  {"sparkpd": _F, "sparksql": _D, "modin": _F, "polars": _D, "cudf": _F, "vaex": _D, "datatable": _F},
    "stats":   {"sparkpd": _F, "sparksql": _D, "modin": _F, "polars": _D, "cudf": _F, "vaex": _D, "datatable": _M},
    "query":   {"sparkpd": _F, "sparksql": _D, "modin": _F, "polars": _D, "cudf": _F, "vaex": _D, "datatable": _M},
    "cast":    {"sparkpd": _F, "sparksql": _D, "modin": _F, "polars": _D, "cudf": _F, "vaex": _D, "datatable": _M},
    "drop":    {"sparkpd": _F, "sparksql": _D, "modin": _F, "polars": _D, "cudf": _F, "vaex": _M, "datatable": _M},
    "rename":  {"sparkpd": _F, "sparksql": _M, "modin": _F, "polars": _D, "cudf": _F, "vaex": _D, "datatable": _M},
    "pivot":   {"sparkpd": _F, "sparksql": _D, "modin": _F, "polars": _D, "cudf": _F, "vaex": _M, "datatable": _M},
    "calccol": {"sparkpd": _F, "sparksql": _M, "modin": _F, "polars": _D, "cudf": _M, "vaex": _D, "datatable": _M},
    "join":    {"sparkpd": _F, "sparksql": _M, "modin": _F, "polars": _D, "cudf": _F, "vaex": _M, "datatable": _M},
    "onehot":  {"sparkpd": _F, "sparksql": _M, "modin": _F, "polars": _D, "cudf": _F, "vaex": _D, "datatable": _M},
    "catenc":  {"sparkpd": _F, "sparksql": _D, "modin": _F, "polars": _D, "cudf": _F, "vaex": _D, "datatable": _M},
    "group":   {"sparkpd": _F, "sparksql": _D, "modin": _F, "polars": _D, "cudf": _F, "vaex": _F, "datatable": _F},
    "chdate":  {"sparkpd": _F, "sparksql": _D, "modin": _F, "polars": _M, "cudf": _F, "vaex": _M, "datatable": _M},
    "dropna":  {"sparkpd": _F, "sparksql": _D, "modin": _F, "polars": _D, "cudf": _F, "vaex": _D, "datatable": _M},
    "setcase": {"sparkpd": _F, "sparksql": _D, "modin": _F, "polars": _D, "cudf": _F, "vaex": _D, "datatable": _F},
    "norm":    {"sparkpd": _F, "sparksql": _D, "modin": _F, "polars": _D, "cudf": _F, "vaex": _F, "datatable": _M},
    "dedup":   {"sparkpd": _F, "sparksql": _D, "modin": _F, "polars": _D, "cudf": _F, "vaex": _M, "datatable": _M},
    "fillna":  {"sparkpd": _F, "sparksql": _D, "modin": _F, "polars": _M, "cudf": _F, "vaex": _F, "datatable": _M},
    "replace": {"sparkpd": _F, "sparksql": _D, "modin": _F, "polars": _M, "cudf": _F, "vaex": _D, "datatable": _M},
    "edit":    {"sparkpd": _F, "sparksql": _M, "modin": _F, "polars": _D, "cudf": _F, "vaex": _D, "datatable": _F},
}

#: How engine names map onto the columns of Table 3.
_ENGINE_TO_COLUMN = {
    "pandas": None,           # Pandas is the reference API
    "sparkpd": "sparkpd",
    "sparksql": "sparksql",
    "modin_dask": "modin",
    "modin_ray": "modin",
    "polars": "polars",
    "cudf": "cudf",
    "vaex": "vaex",
    "datatable": "datatable",
    "duckdb": None,           # SQL only; not part of Table 3
}


def compatibility(engine: str, preparator: str) -> Compatibility:
    """Support level of ``preparator`` in ``engine`` (Pandas is always FULL)."""
    if preparator not in COMPATIBILITY_MATRIX:
        raise KeyError(f"unknown preparator {preparator!r}")
    column = _ENGINE_TO_COLUMN.get(engine, engine)
    if column is None:
        return Compatibility.FULL
    row = COMPATIBILITY_MATRIX[preparator]
    if column not in row:
        raise KeyError(f"unknown engine {engine!r}")
    return row[column]


def compatibility_table() -> list[dict[str, str]]:
    """Table 3 as a list of row dictionaries (used by the experiment driver)."""
    columns = ["sparkpd", "sparksql", "modin", "polars", "cudf", "vaex", "datatable"]
    rows = []
    for preparator in PREPARATOR_NAMES:
        row = {"preparator": preparator}
        for column in columns:
            row[column] = COMPATIBILITY_MATRIX[preparator][column].symbol
        rows.append(row)
    return rows


def coverage_fraction(engine: str) -> float:
    """Fraction of the 27 preparators natively available (FULL or DIFFERENT)."""
    levels = [compatibility(engine, p) for p in COMPATIBILITY_MATRIX]
    native = sum(1 for level in levels if level is not Compatibility.MISSING)
    return native / len(levels)
