"""Evaluation metrics used throughout the paper's figures.

* **speedup** over Pandas (Figures 1, 2 and 5)::

      speedup = time(Pandas, prep/stage) / time(lib, prep/stage)

  values above 1 mean the library outperforms Pandas;

* **impact** of a preparator on its stage (Figure 2, background bars)::

      impact = time(dataset, prep) / time(dataset, stage) * 100

* trimmed averaging of repeated runs (footnote 5) lives in
  :func:`repro.simulate.clock.trimmed_mean`.
"""

from __future__ import annotations

import math
from typing import Mapping

__all__ = ["speedup", "impact_percentages", "geometric_mean_speedup", "format_speedup"]


def speedup(pandas_seconds: float, library_seconds: float) -> float:
    """Speedup of a library over the Pandas baseline for the same work."""
    if library_seconds <= 0:
        return math.inf if pandas_seconds > 0 else 1.0
    if pandas_seconds <= 0:
        return 0.0
    return pandas_seconds / library_seconds


def impact_percentages(per_preparator_seconds: Mapping[str, float]) -> dict[str, float]:
    """Share of the stage runtime attributable to each preparator, in percent."""
    total = sum(v for v in per_preparator_seconds.values() if v > 0)
    if total <= 0:
        return {name: 0.0 for name in per_preparator_seconds}
    return {name: 100.0 * max(value, 0.0) / total
            for name, value in per_preparator_seconds.items()}


def geometric_mean_speedup(speedups: Mapping[str, float] | list[float]) -> float:
    """Geometric mean of a collection of speedups (robust to outliers)."""
    values = list(speedups.values()) if isinstance(speedups, Mapping) else list(speedups)
    values = [v for v in values if v > 0 and math.isfinite(v)]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def format_speedup(value: float) -> str:
    """Human-readable rendering used by the report printers."""
    if math.isinf(value):
        return "inf"
    if value >= 100:
        return f"{value:,.0f}x"
    if value >= 1:
        return f"{value:.1f}x"
    return f"{value:.2f}x"
