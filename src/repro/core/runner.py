"""Bento's execution runner: the paper's three measurement modes.

Section 3 defines how every number in the evaluation is produced:

* **function-core** — each preparator is executed (and timed) alone; lazy
  engines are forced to materialize after every call;
* **pipeline-stage** — each of the four stages (I/O, EDA, DT, DC) is executed
  as a unit, so lazy engines may optimize within a stage;
* **pipeline-full** — the entire pipeline runs end to end, with or without
  lazy evaluation (the Figure 5 comparison).

Every measurement is repeated ``runs`` times and averaged with the 20th-80th
percentile trimming protocol; failures raised by the memory model are recorded
as OOM outcomes (the ✕ entries of Table 5 and the OOM markers of Figure 6).

:class:`MatrixRunner` is the canonical implementation: every mode emits
unified :class:`~repro.results.Measurement` records, which the
:class:`~repro.session.Session` facade collects into
:class:`~repro.results.ResultSet` objects.  :class:`BentoRunner` and the three
mode-specific timing dataclasses are retained as thin deprecation shims that
convert those records back to the historical shapes.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

from ..frame.frame import DataFrame
from ..results import Measurement
from ..simulate.clock import RunReport, trimmed_mean
from ..simulate.memory import SimulatedOOMError
from .pipeline import Pipeline, PipelineStep
from .preparators import get_preparator
from .stages import Stage

if TYPE_CHECKING:  # imported only for type checking to avoid a circular import
    from ..engines.base import BaseEngine, SimulationContext

__all__ = ["MatrixRunner", "BentoRunner",
           "PreparatorTiming", "StageTiming", "PipelineTiming"]


class MatrixRunner:
    """Runs pipelines on engines under the three measurement modes.

    Every ``measure_*`` method returns unified
    :class:`~repro.results.Measurement` records carrying the full matrix
    coordinates (engine, dataset, pipeline, mode, stage, step, machine).
    """

    def __init__(self, runs: int = 3):
        if runs < 1:
            raise ValueError("runs must be at least 1")
        self.runs = runs

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _average(self, per_run: Sequence[float]) -> float:
        return trimmed_mean(per_run)

    @staticmethod
    def _is_io_step(step: PipelineStep) -> bool:
        return step.preparator in ("read", "write")

    def _run_io_step(self, engine: BaseEngine, frame: DataFrame, step: PipelineStep,
                     sim: SimulationContext, run_index: int,
                     streaming: bool = False) -> tuple[DataFrame, float]:
        file_format = str(step.params.get("format", "csv"))
        if step.preparator == "read":
            loaded, record = engine.read_dataset(frame, sim, file_format=file_format,
                                                 run_index=run_index, streaming=streaming)
            return loaded, record.seconds
        record = engine.write_dataset(frame, sim, file_format=file_format,
                                      run_index=run_index, streaming=streaming)
        return frame, record.seconds

    def _base_measurement(self, engine: BaseEngine, sim: SimulationContext,
                          pipeline: Pipeline, mode: str, **extra) -> Measurement:
        return Measurement(engine=engine.name, dataset=sim.dataset_name,
                           pipeline=pipeline.name, mode=mode,
                           machine=sim.machine.name, **extra)

    # ------------------------------------------------------------------ #
    # function-core mode
    # ------------------------------------------------------------------ #
    def measure_function_core(self, engine: BaseEngine, frame: DataFrame,
                              pipeline: Pipeline, sim: SimulationContext
                              ) -> list[Measurement]:
        """Execute and price every preparator call in isolation.

        One measurement per pipeline position; a single failed measurement
        when the memory model kills the run.
        """
        try:
            per_call: dict[int, list[float]] = {}
            for run_index in range(self.runs):
                current = frame
                for position, step in enumerate(pipeline.steps):
                    if self._is_io_step(step):
                        current, seconds = self._run_io_step(engine, current, step, sim, run_index)
                    else:
                        outcome, record = engine.execute_step(current, step, sim,
                                                              run_index=run_index,
                                                              pipeline_scope=False)
                        seconds = record.seconds
                        if outcome.chained:
                            current = outcome.frame
                    per_call.setdefault(position, []).append(seconds)
        except SimulatedOOMError as oom:
            return [self._base_measurement(engine, sim, pipeline, "core",
                                           failed=True, failure_reason=str(oom))]
        return [self._base_measurement(engine, sim, pipeline, "core",
                                       stage=step.stage.value, step=step.preparator,
                                       step_index=position,
                                       seconds=self._average(per_call[position]))
                for position, step in enumerate(pipeline.steps)]

    # ------------------------------------------------------------------ #
    # pipeline-stage mode
    # ------------------------------------------------------------------ #
    def measure_stage(self, engine: BaseEngine, frame: DataFrame, pipeline: Pipeline,
                      stage: "Stage | str", sim: SimulationContext,
                      lazy: bool | None = None,
                      streaming: bool | None = None) -> Measurement:
        """Execute one stage of the pipeline as a unit.

        The whole pipeline runs in order (later steps may depend on columns
        produced by earlier ones), but only the steps belonging to the target
        stage contribute to the reported time.  Lazy engines may defer within
        each contiguous block of target-stage steps — the stage-granularity
        optimization of Figure 1.  ``streaming=True`` runs the target blocks
        through the morsel-driven executor on streaming-capable engines.
        """
        stage = Stage.parse(stage)
        use_lazy = engine.effective_lazy(lazy)
        use_streaming = engine.effective_streaming(streaming)
        measurement = self._base_measurement(engine, sim, pipeline, "stage",
                                             stage=stage.value, lazy=use_lazy,
                                             streaming=use_streaming)
        if not pipeline.steps_for_stage(stage):
            return measurement
        try:
            per_run: list[float] = []
            spilled = False
            for run_index in range(self.runs):
                current = frame
                total = 0.0
                for in_stage, block in self._stage_blocks(pipeline, stage):
                    io_steps = [s for s in block if self._is_io_step(s)]
                    other = [s for s in block if not self._is_io_step(s)]
                    for step in io_steps:
                        current, seconds = self._run_io_step(
                            engine, current, step, sim, run_index,
                            streaming=use_streaming if in_stage else False)
                        if in_stage:
                            total += seconds
                    if not other:
                        continue
                    report = RunReport(engine=engine.name,
                                       label=f"{pipeline.name}:{stage.value}")
                    current, report = engine.execute_steps(
                        current, other, sim, lazy=use_lazy if in_stage else False,
                        run_index=run_index, report=report, pipeline_scope=False,
                        streaming=use_streaming if in_stage else False)
                    if in_stage:
                        total += report.total_seconds
                        spilled = spilled or any(r.spilled for r in report.records)
                per_run.append(total)
            measurement.seconds = self._average(per_run)
            measurement.spilled = spilled
        except SimulatedOOMError as oom:
            measurement.failed = True
            measurement.failure_reason = str(oom)
        return measurement

    @staticmethod
    def _stage_blocks(pipeline: Pipeline, stage: Stage) -> list[tuple[bool, list[PipelineStep]]]:
        """Split the pipeline into contiguous blocks in/out of the target stage."""
        blocks: list[tuple[bool, list[PipelineStep]]] = []
        for step in pipeline.steps:
            in_stage = step.stage is stage
            if blocks and blocks[-1][0] == in_stage:
                blocks[-1][1].append(step)
            else:
                blocks.append((in_stage, [step]))
        return blocks

    def measure_stages(self, engine: BaseEngine, frame: DataFrame, pipeline: Pipeline,
                       sim: SimulationContext, lazy: bool | None = None,
                       stages: "Iterable[Stage | str] | None" = None,
                       streaming: bool | None = None) -> list[Measurement]:
        """Stage measurements for the requested stages present in the pipeline."""
        wanted = [Stage.parse(s) for s in stages] if stages is not None else pipeline.stages()
        present = set(pipeline.stages())
        return [self.measure_stage(engine, frame, pipeline, stage, sim, lazy,
                                   streaming=streaming)
                for stage in wanted if stage in present]

    # ------------------------------------------------------------------ #
    # I/O read/write modes (the Figure 3 / Figure 4 matrix)
    # ------------------------------------------------------------------ #
    def measure_io(self, engine: BaseEngine, frame: DataFrame, sim: SimulationContext,
                   operation: str, file_format: str) -> Measurement:
        """Price reading or writing the dataset in one file format.

        ``operation`` is ``"read"`` or ``"write"``; formats the engine does
        not support are recorded as failed measurements (the ✕ entries of
        Figures 3 and 4), exactly like OOM outcomes.
        """
        from ..engines.base import EngineUnavailableError  # avoids an import cycle

        measurement = Measurement(engine=engine.name, dataset=sim.dataset_name,
                                  mode=operation, stage=Stage.IO.value,
                                  step=file_format, machine=sim.machine.name)
        try:
            per_run: list[float] = []
            for run_index in range(self.runs):
                if operation == "read":
                    _, record = engine.read_dataset(frame, sim, file_format=file_format,
                                                    run_index=run_index)
                else:
                    record = engine.write_dataset(frame, sim, file_format=file_format,
                                                  run_index=run_index)
                per_run.append(record.seconds)
            measurement.seconds = self._average(per_run)
        except EngineUnavailableError as err:
            measurement.failed = True
            measurement.failure_reason = f"unsupported: {err}"
        except SimulatedOOMError as oom:
            measurement.failed = True
            measurement.failure_reason = str(oom)
        return measurement

    # ------------------------------------------------------------------ #
    # pipeline-full mode
    # ------------------------------------------------------------------ #
    def measure_full(self, engine: BaseEngine, frame: DataFrame, pipeline: Pipeline,
                     sim: SimulationContext, lazy: bool | None = None,
                     streaming: bool | None = None) -> Measurement:
        """Execute the entire pipeline end to end.

        ``streaming=True`` selects the morsel-driven streaming executor on
        engines that support it (bit-identical results; the memory model
        prices bounded batch windows and records spill instead of OOM).
        """
        use_lazy = engine.effective_lazy(lazy)
        use_streaming = engine.effective_streaming(streaming)
        measurement = self._base_measurement(engine, sim, pipeline, "full",
                                             lazy=use_lazy, streaming=use_streaming)
        try:
            per_run: list[float] = []
            peak = 0
            spilled = False
            for run_index in range(self.runs):
                current = frame
                total = 0.0
                report = RunReport(engine=engine.name, label=pipeline.name)
                non_io: list[PipelineStep] = []
                for step in pipeline.steps:
                    if self._is_io_step(step):
                        # flush accumulated transformation steps first
                        if non_io:
                            current, report = engine.execute_steps(
                                current, non_io, sim, lazy=use_lazy, run_index=run_index,
                                report=report, pipeline_scope=True,
                                streaming=use_streaming)
                            non_io = []
                        current, seconds = self._run_io_step(engine, current, step, sim,
                                                             run_index,
                                                             streaming=use_streaming)
                        total += seconds
                    else:
                        non_io.append(step)
                if non_io:
                    current, report = engine.execute_steps(current, non_io, sim,
                                                           lazy=use_lazy, run_index=run_index,
                                                           report=report, pipeline_scope=True,
                                                           streaming=use_streaming)
                total += report.total_seconds
                peak = max(peak, report.peak_bytes)
                spilled = spilled or any(r.spilled for r in report.records)
                per_run.append(total)
            measurement.seconds = self._average(per_run)
            measurement.peak_bytes = peak
            measurement.spilled = spilled
        except SimulatedOOMError as oom:
            measurement.failed = True
            measurement.failure_reason = str(oom)
        return measurement


# --------------------------------------------------------------------------- #
# Deprecated shims: the historical per-mode result shapes.
# --------------------------------------------------------------------------- #
def _warn_deprecated(old: str, new: str) -> None:
    warnings.warn(f"{old} is deprecated; use {new} instead",
                  DeprecationWarning, stacklevel=3)


@dataclass
class PreparatorTiming:
    """Function-core result (deprecated; superseded by ``Measurement``)."""

    engine: str
    dataset: str
    pipeline: str
    seconds_by_call: list[tuple[str, float]] = field(default_factory=list)
    failed: bool = False
    failure_reason: str = ""

    def seconds_by_preparator(self) -> dict[str, float]:
        """Average seconds per preparator (averaging over its calls)."""
        sums: dict[str, list[float]] = {}
        for name, seconds in self.seconds_by_call:
            sums.setdefault(name, []).append(seconds)
        return {name: sum(values) / len(values) for name, values in sums.items()}

    @property
    def total_seconds(self) -> float:
        return sum(seconds for _, seconds in self.seconds_by_call)

    @classmethod
    def from_measurements(cls, measurements: Iterable[Measurement]) -> "PreparatorTiming":
        records = list(measurements)
        if not records:
            raise ValueError("no measurements to convert")
        first = records[0]
        timing = cls(first.engine, first.dataset, first.pipeline)
        for record in records:
            if record.failed:
                timing.failed = True
                timing.failure_reason = record.failure_reason
                return timing
        for record in sorted(records, key=lambda m: m.step_index):
            timing.seconds_by_call.append((record.step, record.seconds))
        return timing

    def to_measurements(self) -> list[Measurement]:
        if self.failed:
            return [Measurement(engine=self.engine, dataset=self.dataset,
                                pipeline=self.pipeline, mode="core", failed=True,
                                failure_reason=self.failure_reason)]
        return [Measurement(engine=self.engine, dataset=self.dataset,
                            pipeline=self.pipeline, mode="core",
                            stage=get_preparator(name).stage.value, step=name,
                            step_index=position, seconds=seconds)
                for position, (name, seconds) in enumerate(self.seconds_by_call)]


@dataclass
class StageTiming:
    """Pipeline-stage result (deprecated; superseded by ``Measurement``)."""

    engine: str
    dataset: str
    pipeline: str
    stage: str
    seconds: float
    lazy: bool = False
    failed: bool = False
    failure_reason: str = ""

    @classmethod
    def from_measurement(cls, m: Measurement) -> "StageTiming":
        return cls(m.engine, m.dataset, m.pipeline, m.stage, m.seconds,
                   lazy=m.lazy, failed=m.failed, failure_reason=m.failure_reason)

    def to_measurement(self) -> Measurement:
        return Measurement(engine=self.engine, dataset=self.dataset,
                           pipeline=self.pipeline, mode="stage", stage=self.stage,
                           seconds=self.seconds, lazy=self.lazy, failed=self.failed,
                           failure_reason=self.failure_reason)


@dataclass
class PipelineTiming:
    """Pipeline-full result (deprecated; superseded by ``Measurement``)."""

    engine: str
    dataset: str
    pipeline: str
    seconds: float
    lazy: bool = False
    peak_bytes: int = 0
    failed: bool = False
    failure_reason: str = ""

    @classmethod
    def from_measurement(cls, m: Measurement) -> "PipelineTiming":
        return cls(m.engine, m.dataset, m.pipeline, m.seconds, lazy=m.lazy,
                   peak_bytes=m.peak_bytes, failed=m.failed,
                   failure_reason=m.failure_reason)

    def to_measurement(self) -> Measurement:
        return Measurement(engine=self.engine, dataset=self.dataset,
                           pipeline=self.pipeline, mode="full", seconds=self.seconds,
                           peak_bytes=self.peak_bytes, lazy=self.lazy,
                           failed=self.failed, failure_reason=self.failure_reason)


class BentoRunner(MatrixRunner):
    """Deprecated facade returning the historical per-mode dataclasses.

    Existing call sites keep working; new code should go through
    :class:`repro.Session` (or :class:`MatrixRunner` directly), which produce
    unified :class:`~repro.results.Measurement` records.
    """

    def run_function_core(self, engine: BaseEngine, frame: DataFrame, pipeline: Pipeline,
                          sim: SimulationContext) -> PreparatorTiming:
        """Execute and price every preparator call in isolation."""
        _warn_deprecated("BentoRunner.run_function_core", "Session.run(mode='core')")
        measurements = self.measure_function_core(engine, frame, pipeline, sim)
        if not measurements:  # a pipeline with no steps
            return PreparatorTiming(engine.name, sim.dataset_name, pipeline.name)
        return PreparatorTiming.from_measurements(measurements)

    def run_stage(self, engine: BaseEngine, frame: DataFrame, pipeline: Pipeline,
                  stage: "Stage | str", sim: SimulationContext,
                  lazy: bool | None = None) -> StageTiming:
        """Execute one stage of the pipeline as a unit."""
        _warn_deprecated("BentoRunner.run_stage", "Session.run(mode='stage')")
        return StageTiming.from_measurement(
            self.measure_stage(engine, frame, pipeline, stage, sim, lazy))

    def run_all_stages(self, engine: BaseEngine, frame: DataFrame, pipeline: Pipeline,
                       sim: SimulationContext, lazy: bool | None = None) -> dict[str, StageTiming]:
        """Stage timings for every stage present in the pipeline."""
        _warn_deprecated("BentoRunner.run_all_stages", "Session.run(mode='stage')")
        return {m.stage: StageTiming.from_measurement(m)
                for m in self.measure_stages(engine, frame, pipeline, sim, lazy)}

    def run_full(self, engine: BaseEngine, frame: DataFrame, pipeline: Pipeline,
                 sim: SimulationContext, lazy: bool | None = None) -> PipelineTiming:
        """Execute the entire pipeline end to end."""
        _warn_deprecated("BentoRunner.run_full", "Session.run(mode='full')")
        return PipelineTiming.from_measurement(
            self.measure_full(engine, frame, pipeline, sim, lazy))

    def run_full_matrix(self, engines: Mapping[str, BaseEngine], frame: DataFrame,
                        pipeline: Pipeline, sim: SimulationContext,
                        lazy: bool | None = None) -> dict[str, PipelineTiming]:
        """Pipeline-full timings for a dict of engines."""
        _warn_deprecated("BentoRunner.run_full_matrix", "Session.run(mode='full')")
        return {name: PipelineTiming.from_measurement(
                    self.measure_full(engine, frame, pipeline, sim, lazy))
                for name, engine in engines.items()}
