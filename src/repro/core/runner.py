"""Bento's execution runner: the paper's three measurement modes.

Section 3 defines how every number in the evaluation is produced:

* **function-core** — each preparator is executed (and timed) alone; lazy
  engines are forced to materialize after every call;
* **pipeline-stage** — each of the four stages (I/O, EDA, DT, DC) is executed
  as a unit, so lazy engines may optimize within a stage;
* **pipeline-full** — the entire pipeline runs end to end, with or without
  lazy evaluation (the Figure 5 comparison).

Every measurement is repeated ``runs`` times and averaged with the 20th-80th
percentile trimming protocol; failures raised by the memory model are recorded
as OOM outcomes (the ✕ entries of Table 5 and the OOM markers of Figure 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Sequence

from ..frame.frame import DataFrame
from ..simulate.clock import RunReport, trimmed_mean
from ..simulate.memory import SimulatedOOMError
from .pipeline import Pipeline, PipelineStep
from .stages import Stage

if TYPE_CHECKING:  # imported only for type checking to avoid a circular import
    from ..engines.base import BaseEngine, SimulationContext

__all__ = ["PreparatorTiming", "StageTiming", "PipelineTiming", "BentoRunner"]


@dataclass
class PreparatorTiming:
    """Function-core result: average seconds per preparator call."""

    engine: str
    dataset: str
    pipeline: str
    seconds_by_call: list[tuple[str, float]] = field(default_factory=list)
    failed: bool = False
    failure_reason: str = ""

    def seconds_by_preparator(self) -> dict[str, float]:
        """Average seconds per preparator (averaging over its calls)."""
        sums: dict[str, list[float]] = {}
        for name, seconds in self.seconds_by_call:
            sums.setdefault(name, []).append(seconds)
        return {name: sum(values) / len(values) for name, values in sums.items()}

    @property
    def total_seconds(self) -> float:
        return sum(seconds for _, seconds in self.seconds_by_call)


@dataclass
class StageTiming:
    """Pipeline-stage result: average seconds for one stage."""

    engine: str
    dataset: str
    pipeline: str
    stage: str
    seconds: float
    lazy: bool = False
    failed: bool = False
    failure_reason: str = ""


@dataclass
class PipelineTiming:
    """Pipeline-full result."""

    engine: str
    dataset: str
    pipeline: str
    seconds: float
    lazy: bool = False
    peak_bytes: int = 0
    failed: bool = False
    failure_reason: str = ""


class BentoRunner:
    """Runs pipelines on engines under the three measurement modes."""

    def __init__(self, runs: int = 3):
        if runs < 1:
            raise ValueError("runs must be at least 1")
        self.runs = runs

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _average(self, per_run: Sequence[float]) -> float:
        return trimmed_mean(per_run)

    @staticmethod
    def _is_io_step(step: PipelineStep) -> bool:
        return step.preparator in ("read", "write")

    def _run_io_step(self, engine: BaseEngine, frame: DataFrame, step: PipelineStep,
                     sim: SimulationContext, run_index: int) -> tuple[DataFrame, float]:
        file_format = str(step.params.get("format", "csv"))
        if step.preparator == "read":
            loaded, record = engine.read_dataset(frame, sim, file_format=file_format,
                                                 run_index=run_index)
            return loaded, record.seconds
        record = engine.write_dataset(frame, sim, file_format=file_format,
                                      run_index=run_index)
        return frame, record.seconds

    # ------------------------------------------------------------------ #
    # function-core mode
    # ------------------------------------------------------------------ #
    def run_function_core(self, engine: BaseEngine, frame: DataFrame, pipeline: Pipeline,
                          sim: SimulationContext) -> PreparatorTiming:
        """Execute and price every preparator call in isolation."""
        result = PreparatorTiming(engine.name, sim.dataset_name, pipeline.name)
        try:
            per_call: dict[int, list[float]] = {}
            for run_index in range(self.runs):
                current = frame
                for position, step in enumerate(pipeline.steps):
                    if self._is_io_step(step):
                        current, seconds = self._run_io_step(engine, current, step, sim, run_index)
                    else:
                        outcome, record = engine.execute_step(current, step, sim,
                                                              run_index=run_index,
                                                              pipeline_scope=False)
                        seconds = record.seconds
                        if outcome.chained:
                            current = outcome.frame
                    per_call.setdefault(position, []).append(seconds)
            for position, step in enumerate(pipeline.steps):
                result.seconds_by_call.append(
                    (step.preparator, self._average(per_call[position]))
                )
        except SimulatedOOMError as oom:
            result.failed = True
            result.failure_reason = str(oom)
        return result

    # ------------------------------------------------------------------ #
    # pipeline-stage mode
    # ------------------------------------------------------------------ #
    def run_stage(self, engine: BaseEngine, frame: DataFrame, pipeline: Pipeline,
                  stage: "Stage | str", sim: SimulationContext,
                  lazy: bool | None = None) -> StageTiming:
        """Execute one stage of the pipeline as a unit.

        The whole pipeline runs in order (later steps may depend on columns
        produced by earlier ones), but only the steps belonging to the target
        stage contribute to the reported time.  Lazy engines may defer within
        each contiguous block of target-stage steps — the stage-granularity
        optimization of Figure 1.
        """
        stage = Stage.parse(stage)
        use_lazy = engine.supports_lazy if lazy is None else (lazy and engine.supports_lazy)
        timing = StageTiming(engine.name, sim.dataset_name, pipeline.name, stage.value,
                             seconds=0.0, lazy=use_lazy)
        if not pipeline.steps_for_stage(stage):
            return timing
        try:
            per_run: list[float] = []
            for run_index in range(self.runs):
                current = frame
                total = 0.0
                for in_stage, block in self._stage_blocks(pipeline, stage):
                    io_steps = [s for s in block if self._is_io_step(s)]
                    other = [s for s in block if not self._is_io_step(s)]
                    for step in io_steps:
                        current, seconds = self._run_io_step(engine, current, step, sim, run_index)
                        if in_stage:
                            total += seconds
                    if not other:
                        continue
                    report = RunReport(engine=engine.name,
                                       label=f"{pipeline.name}:{stage.value}")
                    current, report = engine.execute_steps(
                        current, other, sim, lazy=use_lazy if in_stage else False,
                        run_index=run_index, report=report, pipeline_scope=False)
                    if in_stage:
                        total += report.total_seconds
                per_run.append(total)
            timing.seconds = self._average(per_run)
        except SimulatedOOMError as oom:
            timing.failed = True
            timing.failure_reason = str(oom)
        return timing

    @staticmethod
    def _stage_blocks(pipeline: Pipeline, stage: Stage) -> list[tuple[bool, list[PipelineStep]]]:
        """Split the pipeline into contiguous blocks in/out of the target stage."""
        blocks: list[tuple[bool, list[PipelineStep]]] = []
        for step in pipeline.steps:
            in_stage = step.stage is stage
            if blocks and blocks[-1][0] == in_stage:
                blocks[-1][1].append(step)
            else:
                blocks.append((in_stage, [step]))
        return blocks

    def run_all_stages(self, engine: BaseEngine, frame: DataFrame, pipeline: Pipeline,
                       sim: SimulationContext, lazy: bool | None = None) -> dict[str, StageTiming]:
        """Stage timings for every stage present in the pipeline."""
        return {stage.value: self.run_stage(engine, frame, pipeline, stage, sim, lazy)
                for stage in pipeline.stages()}

    # ------------------------------------------------------------------ #
    # pipeline-full mode
    # ------------------------------------------------------------------ #
    def run_full(self, engine: BaseEngine, frame: DataFrame, pipeline: Pipeline,
                 sim: SimulationContext, lazy: bool | None = None) -> PipelineTiming:
        """Execute the entire pipeline end to end."""
        use_lazy = engine.supports_lazy if lazy is None else (lazy and engine.supports_lazy)
        timing = PipelineTiming(engine.name, sim.dataset_name, pipeline.name,
                                seconds=0.0, lazy=use_lazy)
        try:
            per_run: list[float] = []
            peak = 0
            for run_index in range(self.runs):
                current = frame
                total = 0.0
                report = RunReport(engine=engine.name, label=pipeline.name)
                non_io: list[PipelineStep] = []
                for step in pipeline.steps:
                    if self._is_io_step(step):
                        # flush accumulated transformation steps first
                        if non_io:
                            current, report = engine.execute_steps(
                                current, non_io, sim, lazy=use_lazy, run_index=run_index,
                                report=report, pipeline_scope=True)
                            non_io = []
                        current, seconds = self._run_io_step(engine, current, step, sim, run_index)
                        total += seconds
                    else:
                        non_io.append(step)
                if non_io:
                    current, report = engine.execute_steps(current, non_io, sim,
                                                           lazy=use_lazy, run_index=run_index,
                                                           report=report, pipeline_scope=True)
                total += report.total_seconds
                peak = max(peak, report.peak_bytes)
                per_run.append(total)
            timing.seconds = self._average(per_run)
            timing.peak_bytes = peak
        except SimulatedOOMError as oom:
            timing.failed = True
            timing.failure_reason = str(oom)
        return timing

    # ------------------------------------------------------------------ #
    # convenience: run many engines
    # ------------------------------------------------------------------ #
    def run_full_matrix(self, engines: Mapping[str, BaseEngine], frame: DataFrame,
                        pipeline: Pipeline, sim: SimulationContext,
                        lazy: bool | None = None) -> dict[str, PipelineTiming]:
        """Pipeline-full timings for a dict of engines."""
        return {name: self.run_full(engine, frame, pipeline, sim, lazy)
                for name, engine in engines.items()}
