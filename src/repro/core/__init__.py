"""Bento core: the paper's evaluation framework.

Preparators (Table 3), pipelines declared in JSON, the three measurement modes
(function-core / pipeline-stage / pipeline-full), speedup and impact metrics,
and the Pandas-API compatibility matrix.
"""

from .compat import Compatibility, compatibility, compatibility_table, coverage_fraction
from .expr_spec import parse_expression
from .metrics import format_speedup, geometric_mean_speedup, impact_percentages, speedup
from .pipeline import Pipeline, PipelineStep
from .preparators import PREPARATOR_NAMES, PREPARATORS, Preparator, PreparatorResult, get_preparator
from .runner import BentoRunner, MatrixRunner, PipelineTiming, PreparatorTiming, StageTiming
from .stages import Stage

__all__ = [
    "Stage",
    "Preparator",
    "PreparatorResult",
    "PREPARATORS",
    "PREPARATOR_NAMES",
    "get_preparator",
    "Pipeline",
    "PipelineStep",
    "parse_expression",
    "MatrixRunner",
    "BentoRunner",
    "PreparatorTiming",
    "StageTiming",
    "PipelineTiming",
    "speedup",
    "impact_percentages",
    "geometric_mean_speedup",
    "format_speedup",
    "Compatibility",
    "compatibility",
    "compatibility_table",
    "coverage_fraction",
]
