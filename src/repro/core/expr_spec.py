"""JSON-friendly expression specifications.

Bento pipelines are declared in JSON (the paper's configuration-file driven
workflow), so expressions used by the ``query`` and ``calccol`` preparators
need a serializable form.  This module converts small dictionaries into
:class:`~repro.frame.expressions.Expression` trees::

    {"col": "trip_distance"}
    {"lit": 3.5}
    {"op": ">", "left": {"col": "fare_amount"}, "right": {"lit": 0}}
    {"op": "&", "left": ..., "right": ...}
    {"fn": "is_null", "arg": {"col": "age"}}
    {"fn": "contains", "arg": {"col": "name"}, "pattern": "^A"}
    {"fn": "year", "arg": {"col": "pickup_datetime"}}

Strings are also accepted as a shorthand for column references.
"""

from __future__ import annotations

from typing import Any, Mapping

from ..frame.errors import ExpressionError
from ..frame.expressions import Expression, col, lit

__all__ = ["parse_expression"]

_BINARY_OPS = {"+", "-", "*", "/", "==", "!=", "<", "<=", ">", ">=", "&", "|"}
_UNARY_FNS = {"is_null", "not_null", "not", "neg"}
_STRING_FNS = {"contains", "like", "startswith", "endswith"}
_DATE_FNS = {"year", "month", "day", "hour", "minute", "second", "weekday", "dayofyear"}


def _binary(op: str, left: Expression, right: Expression) -> Expression:
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        return left / right
    if op == "==":
        return left == right
    if op == "!=":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    if op == "&":
        return left & right
    return left | right


def parse_expression(spec: "Expression | Mapping[str, Any] | str | int | float | bool") -> Expression:
    """Convert a JSON-style specification into an :class:`Expression`.

    Already-built expressions pass through unchanged; bare strings are column
    references; bare numbers/booleans are literals.
    """
    if isinstance(spec, Expression):
        return spec
    if isinstance(spec, str):
        return col(spec)
    if isinstance(spec, (int, float, bool)):
        return lit(spec)
    if not isinstance(spec, Mapping):
        raise ExpressionError(f"cannot parse expression specification {spec!r}")

    if "col" in spec:
        return col(str(spec["col"]))
    if "lit" in spec:
        return lit(spec["lit"])

    if "op" in spec:
        op = spec["op"]
        if op not in _BINARY_OPS:
            raise ExpressionError(f"unknown operator {op!r} in expression specification")
        if "left" not in spec or "right" not in spec:
            raise ExpressionError(f"operator {op!r} requires 'left' and 'right' operands")
        return _binary(op, parse_expression(spec["left"]), parse_expression(spec["right"]))

    if "fn" in spec:
        fn = spec["fn"]
        if "arg" not in spec:
            raise ExpressionError(f"function {fn!r} requires an 'arg' operand")
        arg = parse_expression(spec["arg"])
        if fn in _UNARY_FNS:
            if fn == "is_null":
                return arg.is_null()
            if fn == "not_null":
                return arg.not_null()
            if fn == "not":
                return ~arg
            return -arg
        if fn in _STRING_FNS:
            pattern = spec.get("pattern")
            if pattern is None:
                raise ExpressionError(f"string function {fn!r} requires a 'pattern'")
            if fn == "contains":
                return arg.str_contains(str(pattern), regex=bool(spec.get("regex", True)))
            if fn == "like":
                return arg.str_like(str(pattern))
            if fn == "startswith":
                return arg.str_startswith(str(pattern))
            return arg.str_endswith(str(pattern))
        if fn in _DATE_FNS:
            return arg.dt_component(fn)
        if fn == "isin":
            values = spec.get("values")
            if not isinstance(values, (list, tuple)):
                raise ExpressionError("'isin' requires a list of 'values'")
            return arg.is_in(values)
        if fn == "between":
            if "low" not in spec or "high" not in spec:
                raise ExpressionError("'between' requires 'low' and 'high'")
            return arg.between(spec["low"], spec["high"])
        raise ExpressionError(f"unknown function {fn!r} in expression specification")

    raise ExpressionError(f"cannot parse expression specification {dict(spec)!r}")
