"""Setup shim for environments whose setuptools cannot build PEP 517 wheels.

``pip install -e . --no-build-isolation`` (or ``--no-use-pep517``) works with
this file even when the ``wheel`` package is unavailable; all project metadata
lives in ``pyproject.toml``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.2.0",
    description=(
        "Reproduction of 'Evaluation of Dataframe Libraries for Data Preparation "
        "on a Single Machine' (EDBT 2025)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
)
