"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures.  The physical
scale is kept small so the whole harness completes in a few minutes; the
simulated results are still priced at the nominal (paper) dataset sizes, so
the printed series have the same shape as the corresponding figure.
"""

from __future__ import annotations

import pytest

from repro import ExperimentConfig, Session


#: Scale/engines used by every benchmark: all engines, modest physical samples.
BENCH_CONFIG = ExperimentConfig(scale=0.25, runs=2)


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    return BENCH_CONFIG


@pytest.fixture(scope="session")
def bench_setup() -> Session:
    """The shared session, warmed so generation stays out of timed regions."""
    session = Session(BENCH_CONFIG)
    session.datasets
    session.engines
    return session
