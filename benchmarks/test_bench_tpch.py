"""Benchmark regenerating Figure 7 (TPC-H 10 GB, all 22 queries, all engines)."""

from repro.experiments import fig7_tpch
from repro.experiments.context import ExperimentConfig

_CONFIG = ExperimentConfig(runs=1)


def test_fig7_tpch_all_queries(benchmark):
    result = benchmark.pedantic(
        lambda: fig7_tpch.run(_CONFIG, physical_scale_factor=0.002), rounds=1, iterations=1)
    print("\n" + result.format())
    wins = sum(1 for query in result.seconds if result.best_engine(query) == "cudf")
    assert wins >= len(result.seconds) * 0.8
    assert result.geometric_mean("polars") < result.geometric_mean("pandas")
    assert result.geometric_mean("vaex") > result.geometric_mean("polars")
    assert result.geometric_mean("duckdb") < result.geometric_mean("pandas")
