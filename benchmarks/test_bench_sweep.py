"""Benchmark of the sweep scheduler: sequential vs parallel vs warm cache.

Runs the same small full-pipeline slice three ways — ``workers=1``,
``workers=4`` and a warm-cache replay — asserts the three ``ResultSet``s are
identical, and writes the wall-clock numbers to ``BENCH_sweep.json`` at the
repository root so the performance trajectory of the scheduler is tracked
across PRs.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro import ExperimentConfig, Session, SweepCache

_BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_sweep.json"
_SLICE = dict(mode="full", lazy="both")


def test_bench_sweep_scheduler(tmp_path, bench_config):
    config = bench_config.but(datasets=["athlete", "taxi"])
    session = Session(config)
    session.datasets  # keep generation out of every timed region
    session.engines

    start = time.perf_counter()
    sequential = session.run(**_SLICE, workers=1)
    sequential_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = session.run(**_SLICE, workers=4)
    parallel_s = time.perf_counter() - start
    assert parallel == sequential
    parallel_stats = session.last_sweep

    start = time.perf_counter()
    processes = session.run(**_SLICE, workers=4, executor="process")
    process_s = time.perf_counter() - start
    assert processes == sequential
    process_stats = session.last_sweep

    cache = SweepCache(tmp_path / "cache")
    session.run(**_SLICE, workers=4, cache=cache)
    start = time.perf_counter()
    cached = session.run(**_SLICE, workers=4, cache=cache)
    cached_s = time.perf_counter() - start
    assert cached == sequential
    assert session.last_sweep.executed == 0

    payload = {
        "slice": {"mode": "full", "lazy": "both", "scale": config.scale,
                  "runs": config.runs, "datasets": list(config.datasets),
                  "engines": list(config.engines)},
        "cells": session.last_sweep.total,
        "measurements": len(sequential),
        "sequential_seconds": round(sequential_s, 4),
        "parallel_seconds": round(parallel_s, 4),
        "process_seconds": round(process_s, 4),
        "parallel_workers": 4,
        "warm_cache_seconds": round(cached_s, 4),
        "parallel_speedup": round(sequential_s / parallel_s, 2) if parallel_s else None,
        "process_speedup": round(sequential_s / process_s, 2) if process_s else None,
        "cache_speedup": round(sequential_s / cached_s, 2) if cached_s else None,
        # the batch tier's executed-vs-overhead wall-clock split (the numbers
        # that explain a speedup change, not just report one)
        "parallel_batches": parallel_stats.batches,
        "parallel_execute_seconds": round(parallel_stats.execute_seconds, 4),
        "parallel_overhead_seconds": round(parallel_stats.overhead_seconds, 4),
        "process_batches": process_stats.batches,
        "process_execute_seconds": round(process_stats.execute_seconds, 4),
        "process_serialize_seconds": round(process_stats.serialize_seconds, 4),
        "process_setup_seconds": round(process_stats.setup_seconds, 4),
        "process_overhead_seconds": round(process_stats.overhead_seconds, 4),
    }
    _BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\nsweep bench: sequential={sequential_s:.3f}s thread(4)={parallel_s:.3f}s "
          f"process(4)={process_s:.3f}s warm-cache={cached_s:.3f}s -> {_BENCH_PATH.name}")
    assert _BENCH_PATH.exists()
