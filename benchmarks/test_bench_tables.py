"""Benchmarks regenerating the static tables (Tables 1-4).

These are cheap by construction; they exist so that every artifact of the
paper has exactly one bench target that prints the regenerated content.
"""

from repro.experiments.tables import (
    format_table,
    table1_features,
    table2_datasets,
    table3_compatibility,
    table4_machines,
)


def test_table1_library_features(benchmark):
    rows = benchmark(table1_features)
    assert len(rows) == 9
    print("\n" + format_table(rows, "Table 1 — features of the compared dataframe libraries"))


def test_table2_dataset_features(benchmark, bench_config):
    rows = benchmark(lambda: table2_datasets(scale=0.1, seed=bench_config.seed))
    assert len(rows) == 4
    print("\n" + format_table(rows, "Table 2 — features of the selected datasets"))


def test_table3_pandas_api_compatibility(benchmark):
    rows = benchmark(table3_compatibility)
    assert len(rows) == 27
    print("\n" + format_table(rows, "Table 3 — compatibility with the Pandas API"))


def test_table4_machine_configurations(benchmark):
    rows = benchmark(table4_machines)
    assert len(rows) == 3
    print("\n" + format_table(rows, "Table 4 — machine configurations"))
