"""Benchmarks regenerating Figures 1, 2 and 5 (pipeline experiments).

Each benchmark executes the corresponding experiment driver end to end and
prints the regenerated series (speedups over Pandas) so the output can be
compared side by side with the paper's plots.
"""

from repro.experiments import fig1_stage_speedup, fig2_preparator_speedup, fig5_pipeline_speedup


def test_fig1_stage_speedups(benchmark, bench_setup):
    result = benchmark.pedantic(lambda: fig1_stage_speedup.run(setup=bench_setup),
                                rounds=1, iterations=1)
    print("\n" + result.format())
    # headline findings of Section 4.1
    assert result.best_engine("athlete", "EDA") == "polars"
    assert result.best_engine("taxi", "DT") == "cudf"


def test_fig2_preparator_speedups(benchmark, bench_setup):
    result = benchmark.pedantic(lambda: fig2_preparator_speedup.run(setup=bench_setup),
                                rounds=1, iterations=1)
    for dataset in bench_setup.config.datasets:
        print("\n" + result.format(dataset))
    assert result.best_engine("athlete", "isna") in ("polars", "datatable")


def test_fig5_pipeline_speedups_eager_vs_lazy(benchmark, bench_setup):
    result = benchmark.pedantic(lambda: fig5_pipeline_speedup.run(setup=bench_setup),
                                rounds=1, iterations=1)
    print("\n" + result.format())
    assert result.best_engine("taxi") == "cudf"
    improvement = result.lazy_improvement("patrol", "sparkpd")
    assert improvement is None or improvement > 0.0
