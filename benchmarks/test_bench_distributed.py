"""Benchmark of the distributed sweep tier: 1 vs 2 vs 4 worker hosts.

Runs the same full-pipeline slice sequentially and distributed across 1, 2
and 4 local worker-host processes (each host a real ``python -m repro
sweep-worker`` agent talking TCP to the coordinator), asserts every
``ResultSet`` is bit-identical to the sequential one, and writes the
wall-clock numbers to ``BENCH_distributed.json`` at the repository root so
the scaling trajectory of the coordinator/host protocol is tracked across
PRs.  The baseline is the plain single-host run (``workers=1``): worker
hosts beat it by amortising per-coordinate setup (frame attach, warm
engines, substrate memo) across a persistent batch pool, exactly the
substrate a real multi-machine fleet would exploit per host.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro import Session

_BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_distributed.json"
_SLICE = dict(mode="full", lazy="both", cache=False)


def test_bench_distributed_hosts(bench_config):
    config = bench_config.but(scale=0.1)
    session = Session(config)
    session.datasets  # keep generation out of every timed region
    session.engines

    start = time.perf_counter()
    sequential = session.run(**_SLICE, workers=1)
    sequential_s = time.perf_counter() - start

    host_seconds: dict[int, float] = {}
    host_stats: dict[int, object] = {}
    for hosts in (1, 2, 4):
        start = time.perf_counter()
        distributed = session.run(**_SLICE, hosts=hosts, workers=1)
        host_seconds[hosts] = time.perf_counter() - start
        host_stats[hosts] = session.last_sweep
        assert distributed == sequential, f"hosts={hosts} diverged"
        assert session.last_sweep.hosts == hosts

    payload = {
        "slice": {"mode": "full", "lazy": "both", "scale": config.scale,
                  "runs": config.runs, "datasets": list(config.datasets),
                  "engines": list(config.engines)},
        "cells": host_stats[1].total,
        "measurements": len(sequential),
        "sequential_seconds": round(sequential_s, 4),
        "hosts_1_seconds": round(host_seconds[1], 4),
        "hosts_2_seconds": round(host_seconds[2], 4),
        "hosts_4_seconds": round(host_seconds[4], 4),
        # speedups are against the plain single-host sequential run, the
        # reference every distributed result must be bit-identical to
        "hosts_1_speedup": round(sequential_s / host_seconds[1], 2),
        "hosts_2_speedup": round(sequential_s / host_seconds[2], 2),
        "hosts_4_speedup": round(sequential_s / host_seconds[4], 2),
        "hosts_2_stolen": host_stats[2].stolen,
        "hosts_4_stolen": host_stats[4].stolen,
        "hosts_2_execute_seconds": round(host_stats[2].execute_seconds, 4),
        "hosts_4_execute_seconds": round(host_stats[4].execute_seconds, 4),
        "per_host": {hosts: host_stats[hosts].distributed
                     for hosts in (1, 2, 4)},
    }
    _BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\ndistributed bench: sequential={sequential_s:.3f}s "
          f"hosts1={host_seconds[1]:.3f}s hosts2={host_seconds[2]:.3f}s "
          f"hosts4={host_seconds[4]:.3f}s "
          f"(x{payload['hosts_2_speedup']}/x{payload['hosts_4_speedup']}) "
          f"-> {_BENCH_PATH.name}")
    assert _BENCH_PATH.exists()
