"""Benchmarks regenerating Figures 3 and 4 (CSV / Parquet read and write)."""

from repro.experiments import fig3_io_read, fig4_io_write


def test_fig3_read_csv_and_parquet(benchmark, bench_setup):
    result = benchmark.pedantic(lambda: fig3_io_read.run(setup=bench_setup),
                                rounds=1, iterations=1)
    print("\n" + result.format())
    assert result.best_engine("taxi", "csv") in ("cudf", "vaex")
    # DataTable has no Parquet support (annotated in the paper's plot).
    assert any(engine == "datatable" for _, _, engine in result.unsupported)


def test_fig4_write_csv_and_parquet(benchmark, bench_setup):
    result = benchmark.pedantic(lambda: fig4_io_write.run(setup=bench_setup),
                                rounds=1, iterations=1)
    print("\n" + result.format())
    assert result.best_engine("taxi", "csv") in ("polars", "cudf")
