"""Ablation benchmarks for the design choices called out in DESIGN.md.

These do not correspond to a figure in the paper; they quantify the
contribution of individual optimizer rules (Section 4.2 attributes the lazy
engines' advantage to them) and of the approximate-quantile strategy, using
the substrate directly.
"""

import pytest

from repro.frame import col
from repro.datasets import generate_dataset
from repro.plan import LazyFrame, OptimizerSettings
from repro.tpch import generate_tpch, get_query


def _taxi_plan(frame):
    return (LazyFrame.from_frame(frame)
            .with_column("fare_per_mile", col("fare_amount") / col("trip_distance"))
            .filter(col("fare_amount") > 0)
            .filter(col("trip_distance") > 0)
            .group_agg("passenger_count", {"fare_per_mile": "mean"}))


@pytest.mark.parametrize("rule", ["all", "no_projection", "no_predicate", "no_fusion", "none"])
def test_optimizer_rule_ablation(benchmark, rule):
    """Cells touched (and wall time) with individual optimizer rules disabled."""
    settings = {
        "all": OptimizerSettings(),
        "no_projection": OptimizerSettings(projection_pushdown=False),
        "no_predicate": OptimizerSettings(predicate_pushdown=False),
        "no_fusion": OptimizerSettings(filter_fusion=False),
        "none": OptimizerSettings.all_disabled(),
    }[rule]
    frame = generate_dataset("taxi", scale=0.5).frame

    def run():
        return _taxi_plan(frame).collect_with_stats(settings)[1].total_cells

    cells = benchmark(run)
    baseline = _taxi_plan(frame).collect_with_stats(OptimizerSettings.all_disabled())[1].total_cells
    print(f"\noptimizer ablation [{rule}]: cells touched = {cells} "
          f"(unoptimized = {baseline})")
    assert cells <= baseline


@pytest.mark.parametrize("approximate", [False, True])
def test_quantile_strategy_ablation(benchmark, approximate):
    """Exact (sort-based) vs approximate (sampled) quantiles for ``outlier``."""
    frame = generate_dataset("loan", scale=1.0).frame

    def run():
        return frame["annual_inc"].quantile(0.75, approximate=approximate)

    value = benchmark(run)
    assert value is not None and value > 0


@pytest.mark.parametrize("query", ["q01", "q03", "q06"])
def test_tpch_optimization_ablation(benchmark, query):
    """TPC-H queries with and without plan optimization (cells touched)."""
    data = generate_tpch(0.002)

    def run():
        _, stats = get_query(query)(data).collect_with_stats()
        return stats.total_cells

    optimized = benchmark(run)
    _, raw = get_query(query)(data).collect_with_stats(optimize_plan=False)
    print(f"\n{query}: optimized cells = {optimized}, unoptimized cells = {raw.total_cells}")
    assert optimized <= raw.total_cells
