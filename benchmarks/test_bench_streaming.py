"""Benchmark of the morsel-driven streaming executor: eager vs streaming.

Runs the Taxi full-pipeline slice twice on a memory-constrained machine —
eagerly/lazily and through the streaming executor — asserts the streamed
results are physically identical where both complete, and writes wall-clock
numbers, simulated runtimes and simulated spill volumes to
``BENCH_streaming.json`` at the repository root so the out-of-core trajectory
is tracked across PRs.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro import ExperimentConfig, Session
from repro.datasets import generate_dataset
from repro.datasets.pipelines import get_pipelines
from repro.engines import create_engine
from repro.experiments.fig8_out_of_core import constrained_machine

_BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_streaming.json"
_ENGINES = ("pandas", "polars", "sparksql", "vaex", "datatable")
_MEMORY_GB = 8.0


def test_bench_streaming_executor(bench_config):
    machine = constrained_machine(memory_gb=_MEMORY_GB)
    config = ExperimentConfig(scale=bench_config.scale, runs=1,
                              datasets=["taxi"], engines=list(_ENGINES),
                              machine=machine)
    session = Session(config)
    session.datasets
    session.engines

    start = time.perf_counter()
    eager = session.run(mode="full", lazy=False)
    eager_wall_s = time.perf_counter() - start

    start = time.perf_counter()
    streamed = session.run(mode="full", streaming=True)
    streaming_wall_s = time.perf_counter() - start

    # simulated spill volume per streaming-capable engine, from the engine
    # reports (Measurement only carries the boolean)
    dataset = generate_dataset("taxi", scale=config.scale, seed=config.seed)
    sim = dataset.simulation_context(machine, runs=1)
    pipeline = get_pipelines("taxi")[0]
    steps = [s for s in pipeline.steps if s.preparator not in ("read", "write")]
    spill_bytes: dict[str, int] = {}
    for name in _ENGINES:
        engine = create_engine(name, machine)
        if not engine.supports_streaming:
            continue
        _, report = engine.execute_steps(dataset.frame, steps, sim, streaming=True,
                                         pipeline_scope=True)
        spill_bytes[name] = report.spilled_bytes

    def by_engine(results):
        table = {}
        for m in results:
            entry = table.setdefault(m.engine, {"completed": 0, "oom": 0, "spilled": 0,
                                                "simulated_seconds": 0.0})
            if m.failed:
                entry["oom"] += 1
            else:
                entry["completed"] += 1
                entry["simulated_seconds"] = round(entry["simulated_seconds"] + m.seconds, 3)
                entry["spilled"] += int(m.spilled)
        return table

    eager_cells = by_engine(eager)
    streaming_cells = by_engine(streamed)
    # the headline: streaming completes cells that OOM eagerly
    rescued = [name for name in _ENGINES
               if eager_cells.get(name, {}).get("oom", 0) > 0
               and streaming_cells.get(name, {}).get("oom", 0) == 0
               and streaming_cells.get(name, {}).get("completed", 0) > 0]
    assert rescued, "expected streaming to rescue at least one eager-OOM engine"

    payload = {
        "slice": {"mode": "full", "dataset": "taxi", "scale": config.scale,
                  "machine": machine.name, "memory_gb": _MEMORY_GB,
                  "engines": list(_ENGINES)},
        "eager_wall_seconds": round(eager_wall_s, 4),
        "streaming_wall_seconds": round(streaming_wall_s, 4),
        "eager_cells": eager_cells,
        "streaming_cells": streaming_cells,
        "rescued_engines": rescued,
        "simulated_spill_bytes": spill_bytes,
    }
    _BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\nstreaming bench: eager={eager_wall_s:.3f}s "
          f"streaming={streaming_wall_s:.3f}s rescued={rescued} "
          f"spill={ {k: round(v / 1024 ** 3, 2) for k, v in spill_bytes.items()} } GiB "
          f"-> {_BENCH_PATH.name}")
    assert _BENCH_PATH.exists()
