"""Micro-benchmarks of the substrate kernels (wall-clock, not simulated).

Not a figure of the paper, but useful to track the real performance of the
dataframe substrate that every simulated engine executes on.

``test_bench_substrate_backends`` additionally races the two physical column
backends — ``"object"`` (reference Python kernels) against ``"dict"``
(dictionary-encoded strings + vectorized join/groupby) — on string-heavy and
join/groupby-heavy workloads, asserts the results are identical, and writes
the wall-clock numbers to ``BENCH_substrate.json`` at the repository root so
the backend speedups are tracked (and guarded) across PRs.
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.datasets import generate_dataset
from repro.frame import Column, DataFrame, convert_frame
from repro.frame import strings as fstr
from repro.io import read_csv, write_csv, write_rparquet, read_rparquet

_BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_substrate.json"


@pytest.fixture(scope="module")
def taxi_frame():
    return generate_dataset("taxi", scale=1.0).frame


def test_substrate_filter(benchmark, taxi_frame):
    mask = taxi_frame["fare_amount"].gt(10.0)
    out = benchmark(lambda: taxi_frame.filter(mask))
    assert out.num_rows <= taxi_frame.num_rows


def test_substrate_sort(benchmark, taxi_frame):
    out = benchmark(lambda: taxi_frame.sort_values(["fare_amount", "trip_distance"]))
    assert out.num_rows == taxi_frame.num_rows


def test_substrate_groupby(benchmark, taxi_frame):
    out = benchmark(lambda: taxi_frame.group_agg("passenger_count", {"fare_amount": "mean"}))
    assert out.num_rows >= 1


def test_substrate_join(benchmark, taxi_frame):
    small = taxi_frame.group_agg("vendor_id", {"fare_amount": "mean"}).rename(
        {"fare_amount": "vendor_mean"})
    out = benchmark(lambda: taxi_frame.join(small, on="vendor_id"))
    assert "vendor_mean" in out.columns


def test_substrate_csv_roundtrip(benchmark, taxi_frame, tmp_path):
    path = tmp_path / "taxi.csv"

    def roundtrip():
        write_csv(taxi_frame, path)
        return read_csv(path)

    out = benchmark.pedantic(roundtrip, rounds=1, iterations=1)
    assert out.num_rows == taxi_frame.num_rows


def test_substrate_rparquet_roundtrip(benchmark, taxi_frame, tmp_path):
    path = tmp_path / "taxi.rpq"

    def roundtrip():
        write_rparquet(taxi_frame, path)
        return read_rparquet(path)

    out = benchmark.pedantic(roundtrip, rounds=1, iterations=1)
    assert out.num_rows == taxi_frame.num_rows


# --------------------------------------------------------------------------- #
# object vs dict backend A/B
# --------------------------------------------------------------------------- #
_ROWS = 200_000
_DISTINCT = 200


def _ab_frames():
    """A string-heavy frame: 200k rows drawn from 200 distinct values."""
    rng = np.random.default_rng(7)
    vocabulary = np.array([f"Category {i:03d} padding-{i * 37 % 101} " for i in range(_DISTINCT)],
                          dtype=object)
    keys = vocabulary[rng.integers(0, _DISTINCT, _ROWS)]
    keys[rng.random(_ROWS) < 0.02] = None
    frame = DataFrame({
        "key": Column.from_values(keys, "string"),
        "value": Column.from_values(rng.random(_ROWS) * 100, "float64"),
        "count": Column.from_values(rng.integers(0, 50, _ROWS), "int64"),
    })
    right = DataFrame({
        "key": Column.from_values(list(vocabulary[::2]), "string"),
        "weight": Column.from_values([float(i) for i in range(0, _DISTINCT, 2)], "float64"),
    })
    return frame, right


def _timeit(fn, repeats=3):
    best, out = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - start)
    return best, out


def _string_workload(frame):
    column = frame["key"]
    return DataFrame({
        "lower": fstr.set_case(column, "lower"),
        "stripped": fstr.strip(column),
        "has_7": fstr.contains(column, "7", regex=False),
        "length": fstr.str_length(column),
        "prefix": fstr.startswith(column, "Category 0"),
    })


def _join_groupby_workload(frame, right):
    joined = frame.join(right, on="key", how="left")
    return joined.group_agg("key", {"value": "mean", "count": "sum",
                                    "weight": "max"})


def test_bench_substrate_backends():
    frame, right = _ab_frames()
    dict_frame = convert_frame(frame, "dict")
    dict_right = convert_frame(right, "dict")

    string_obj_s, string_obj = _timeit(lambda: _string_workload(frame))
    string_dict_s, string_dict = _timeit(lambda: _string_workload(dict_frame))
    assert string_obj.equals(convert_frame(string_dict, "object"))

    jg_obj_s, jg_obj = _timeit(lambda: _join_groupby_workload(frame, right))
    jg_dict_s, jg_dict = _timeit(lambda: _join_groupby_workload(dict_frame, dict_right))
    assert jg_obj.equals(convert_frame(jg_dict, "object"))

    payload = {
        "workload": {"rows": _ROWS, "distinct_strings": _DISTINCT,
                     "string_kernels": ["lower", "strip", "contains",
                                        "str_length", "startswith"],
                     "join": "left join on string key (200k x 100)",
                     "groupby": "mean/sum/max by string key"},
        "string_object_seconds": round(string_obj_s, 4),
        "string_dict_seconds": round(string_dict_s, 4),
        "string_speedup": round(string_obj_s / string_dict_s, 2),
        "join_groupby_object_seconds": round(jg_obj_s, 4),
        "join_groupby_dict_seconds": round(jg_dict_s, 4),
        "join_groupby_speedup": round(jg_obj_s / jg_dict_s, 2),
        "identical_results": True,  # asserted above before writing
    }
    _BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\nsubstrate backends: strings {string_obj_s:.3f}s -> {string_dict_s:.3f}s "
          f"({payload['string_speedup']}x), join+groupby {jg_obj_s:.3f}s -> "
          f"{jg_dict_s:.3f}s ({payload['join_groupby_speedup']}x) -> {_BENCH_PATH.name}")
    assert _BENCH_PATH.exists()
