"""Micro-benchmarks of the substrate kernels (wall-clock, not simulated).

Not a figure of the paper, but useful to track the real performance of the
dataframe substrate that every simulated engine executes on.
"""

import pytest

from repro.datasets import generate_dataset
from repro.io import read_csv, write_csv, write_rparquet, read_rparquet


@pytest.fixture(scope="module")
def taxi_frame():
    return generate_dataset("taxi", scale=1.0).frame


def test_substrate_filter(benchmark, taxi_frame):
    mask = taxi_frame["fare_amount"].gt(10.0)
    out = benchmark(lambda: taxi_frame.filter(mask))
    assert out.num_rows <= taxi_frame.num_rows


def test_substrate_sort(benchmark, taxi_frame):
    out = benchmark(lambda: taxi_frame.sort_values(["fare_amount", "trip_distance"]))
    assert out.num_rows == taxi_frame.num_rows


def test_substrate_groupby(benchmark, taxi_frame):
    out = benchmark(lambda: taxi_frame.group_agg("passenger_count", {"fare_amount": "mean"}))
    assert out.num_rows >= 1


def test_substrate_join(benchmark, taxi_frame):
    small = taxi_frame.group_agg("vendor_id", {"fare_amount": "mean"}).rename(
        {"fare_amount": "vendor_mean"})
    out = benchmark(lambda: taxi_frame.join(small, on="vendor_id"))
    assert "vendor_mean" in out.columns


def test_substrate_csv_roundtrip(benchmark, taxi_frame, tmp_path):
    path = tmp_path / "taxi.csv"

    def roundtrip():
        write_csv(taxi_frame, path)
        return read_csv(path)

    out = benchmark.pedantic(roundtrip, rounds=1, iterations=1)
    assert out.num_rows == taxi_frame.num_rows


def test_substrate_rparquet_roundtrip(benchmark, taxi_frame, tmp_path):
    path = tmp_path / "taxi.rpq"

    def roundtrip():
        write_rparquet(taxi_frame, path)
        return read_rparquet(path)

    out = benchmark.pedantic(roundtrip, rounds=1, iterations=1)
    assert out.num_rows == taxi_frame.num_rows
