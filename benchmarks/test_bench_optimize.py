"""Benchmark of the cost-based optimizer: overhead and plan-quality wins.

Optimizes every TPC-H query plan under three settings — rules disabled,
rule-based (``cost_based=False``) and cost-based — and records:

* **overhead**: wall-clock seconds spent inside ``Optimizer.optimize`` per
  setting (the price of consulting the statistics layer and pricing
  candidate plans);
* **plan quality**: the estimated runtime of each optimized plan, and the
  per-query estimated-cost reduction the cost-based rules (join build-side
  reordering, cost-arbitrated filter placement, common-subplan elimination)
  deliver over the rule-based optimizer;
* **advisor latency**: wall-clock seconds for a full ``Session.advise()``
  pass over the pipeline matrix (the zero-execution path).

Everything lands in ``BENCH_optimize.json`` at the repository root so the
optimizer-overhead / plan-quality trajectory is tracked across PRs.
"""

from __future__ import annotations

import dataclasses
import json
import time
from pathlib import Path

from repro import ExperimentConfig, Session
from repro.plan.optimizer import Optimizer, OptimizerSettings
from repro.tpch.datagen import generate_tpch
from repro.tpch.queries import get_query, query_names

_BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_optimize.json"

_SETTINGS = {
    "disabled": OptimizerSettings.all_disabled(),
    "rule_based": dataclasses.replace(OptimizerSettings(), cost_based=False),
    "cost_based": OptimizerSettings(),
}


def test_bench_optimizer(bench_config):
    data = generate_tpch(0.002, seed=bench_config.seed)
    plans = {query: get_query(query)(data).plan for query in query_names()}
    pricer = Optimizer()  # one shared pricing context for comparability

    optimize_wall_s: dict[str, float] = {}
    estimated: dict[str, dict[str, float]] = {}
    for label, settings in _SETTINGS.items():
        optimizer = Optimizer(settings)
        start = time.perf_counter()
        optimized = {query: optimizer.optimize(plan) for query, plan in plans.items()}
        optimize_wall_s[label] = round(time.perf_counter() - start, 4)
        estimated[label] = {query: pricer.plan_seconds(plan)
                            for query, plan in optimized.items()}

    # the cost-based rules must never price above the rule-based plans, and
    # must strictly win somewhere (join reordering on the multi-join queries)
    reductions = {
        query: round(estimated["rule_based"][query] - estimated["cost_based"][query], 6)
        for query in plans
    }
    eps = 1e-9
    assert all(r >= -eps for r in reductions.values()), reductions
    wins = {q: r for q, r in reductions.items() if r > eps}
    assert wins, "expected the cost-based optimizer to win on at least one query"

    session = Session(ExperimentConfig(scale=bench_config.scale, runs=1))
    session.datasets
    session.engines
    start = time.perf_counter()
    reports = session.advise()
    advise_wall_s = time.perf_counter() - start
    assert reports and all(r.best is not None for r in reports)

    payload = {
        "queries": len(plans),
        "optimize_wall_seconds": optimize_wall_s,
        "estimated_seconds_total": {
            label: round(sum(per_query.values()), 4)
            for label, per_query in estimated.items()
        },
        "cost_based_reduction_seconds": reductions,
        "cost_based_win_queries": sorted(wins),
        "advise_cells": len(reports),
        "advise_wall_seconds": round(advise_wall_s, 4),
    }
    _BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\noptimize bench: optimize={optimize_wall_s} "
          f"wins={sorted(wins)} advise={advise_wall_s:.3f}s "
          f"-> {_BENCH_PATH.name}")
    assert _BENCH_PATH.exists()
