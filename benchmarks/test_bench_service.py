"""Benchmark of the benchmark service: request throughput and latency.

Starts a real :class:`~repro.service.app.BenchmarkService` on an ephemeral
port and drives it with threaded :class:`~repro.service.client.ServiceClient`
workers, measuring requests/second and p50/p95 latency for three workloads:

* ``advise`` — pure cost-model estimation, no engine work;
* ``run`` against a **cold** cache — every unique cell executes once, the
  stampede is absorbed by the single-flight layer;
* ``run`` against a **warm** cache — every cell is served from disk.

The numbers land in ``BENCH_service.json`` at the repository root so the
service's performance trajectory is tracked across PRs.
"""

from __future__ import annotations

import json
import statistics
import threading
import time
from pathlib import Path

from repro import ExperimentConfig
from repro.service import launch_in_thread

_BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_service.json"

_CLIENTS = 8
_REQUESTS_PER_CLIENT = 4


def _drive(handle, call) -> dict:
    """Fire ``call(client)`` from ``_CLIENTS`` threads; collect latencies."""
    latencies: list[float] = []
    errors: list[BaseException] = []
    lock = threading.Lock()
    barrier = threading.Barrier(_CLIENTS)

    def worker() -> None:
        client = handle.client
        try:
            barrier.wait()
            for _ in range(_REQUESTS_PER_CLIENT):
                start = time.perf_counter()
                call(client)
                elapsed = time.perf_counter() - start
                with lock:
                    latencies.append(elapsed)
        except BaseException as err:  # noqa: BLE001 — surfaced below
            errors.append(err)

    threads = [threading.Thread(target=worker) for _ in range(_CLIENTS)]
    wall_start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=300)
    wall = time.perf_counter() - wall_start
    assert not errors, errors
    assert len(latencies) == _CLIENTS * _REQUESTS_PER_CLIENT
    ordered = sorted(latencies)
    quantiles = statistics.quantiles(ordered, n=20)
    return {
        "requests": len(latencies),
        "wall_seconds": round(wall, 4),
        "requests_per_second": round(len(latencies) / wall, 2) if wall else None,
        "p50_ms": round(statistics.median(ordered) * 1000, 2),
        "p95_ms": round(quantiles[18] * 1000, 2),
        "max_ms": round(ordered[-1] * 1000, 2),
    }


def test_bench_service(tmp_path):
    config = ExperimentConfig(scale=0.05, runs=1, datasets=("athlete",),
                              engines=("pandas", "polars"))
    with launch_in_thread(config=config, cache=str(tmp_path / "cache"),
                          workers=8) as handle:
        advise = _drive(handle, lambda c: c.advise())

        cold = _drive(handle, lambda c: c.run(mode="full", wait=True))
        service = handle.service
        unique_cells = len(service.session.plan("full"))
        # the whole cold stampede executed each unique cell exactly once
        assert service.cell_executions == unique_cells

        warm = _drive(handle, lambda c: c.run(mode="full", wait=True))
        assert service.cell_executions == unique_cells  # nothing re-executed

        stats = handle.client.stats()

    payload = {
        "setup": {"clients": _CLIENTS, "requests_per_client": _REQUESTS_PER_CLIENT,
                  "workers": 8, "scale": config.scale, "runs": config.runs,
                  "datasets": list(config.datasets),
                  "engines": list(config.engines), "unique_cells": unique_cells},
        "advise": advise,
        "run_cold_cache": cold,
        "run_warm_cache": warm,
        "cell_executions": stats["cell_executions"],
        "single_flight": stats["single_flight"],
        "cache": stats["cache"],
    }
    _BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\nservice bench: advise={advise['requests_per_second']}rps "
          f"run(cold)={cold['requests_per_second']}rps "
          f"run(warm)={warm['requests_per_second']}rps "
          f"p95 warm={warm['p95_ms']}ms -> {_BENCH_PATH.name}")
    assert _BENCH_PATH.exists()
