"""Benchmarks regenerating Figure 6 and Table 5 (scalability / OOM study)."""

from repro.experiments import fig6_scalability, table5_min_config
from repro.experiments.context import ExperimentConfig

_CONFIG = ExperimentConfig(scale=0.2, runs=1)
_FRACTIONS = (0.05, 0.25, 0.50, 1.0)


def test_fig6_taxi_scalability(benchmark):
    result = benchmark.pedantic(
        lambda: fig6_scalability.run(_CONFIG, fractions=_FRACTIONS), rounds=1, iterations=1)
    print("\n" + result.format())
    laptop_finishers = [engine for engine in result.seconds["laptop"][1.0]
                        if result.completed_full("laptop", engine)]
    assert laptop_finishers == ["sparksql"]
    assert not result.completed_full("server", "pandas")


def test_table5_minimum_configuration(benchmark):
    result = benchmark.pedantic(
        lambda: table5_min_config.run(_CONFIG, datasets=("patrol", "taxi"),
                                      fractions=_FRACTIONS),
        rounds=1, iterations=1)
    print("\n" + result.format())
    assert result.minimum["taxi"][1.0]["sparksql"] == "I"
    assert result.minimum["taxi"][1.0]["pandas"] == "OOM"
    assert result.minimum["patrol"][1.0]["datatable"] in ("I", "II")
