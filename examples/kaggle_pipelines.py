"""Scenario: reproduce the paper's per-stage comparison on the Kaggle pipelines.

Runs the three reconstructed Kaggle pipelines of two datasets (Athlete and
Loan) on every engine, in pipeline-stage mode, and prints the per-stage
speedups over Pandas — a small-scale version of Figure 1 — followed by the
per-preparator speedups of the most expensive pipeline (Figure 2 style).

Run with::

    python examples/kaggle_pipelines.py
"""

from repro import ExperimentConfig, Session
from repro.experiments import fig1_stage_speedup, fig2_preparator_speedup


def main() -> None:
    config = ExperimentConfig(
        scale=0.3,
        runs=2,
        datasets=["athlete", "loan"],
        engines=["pandas", "sparkpd", "sparksql", "modin_ray", "polars", "cudf",
                 "vaex", "datatable"],
    )
    setup = Session(config)

    stage_result = fig1_stage_speedup.run(setup=setup)
    print(stage_result.format())
    for dataset in config.datasets:
        for stage in ("EDA", "DT", "DC"):
            best = stage_result.best_engine(dataset, stage)
            print(f"  -> best engine for {dataset}/{stage}: {best}")

    print()
    preparator_result = fig2_preparator_speedup.run(setup=setup)
    print(preparator_result.format("athlete"))
    print(f"  -> best engine for athlete/isna: "
          f"{preparator_result.best_engine('athlete', 'isna')}")


if __name__ == "__main__":
    main()
