"""Scenario: run a pipeline declared in a JSON configuration file.

Bento's original workflow is configuration-driven: a JSON file names the
dataset and the sequence of preparators, and the framework deploys it on every
library.  This example loads ``examples/custom_pipeline.json``, runs it on a
few engines through a :class:`repro.Session` and prints per-stage timings.

Run with::

    python examples/json_pipeline.py
"""

from pathlib import Path

from repro import ExperimentConfig, Pipeline, Session


def main() -> None:
    spec_path = Path(__file__).parent / "custom_pipeline.json"
    pipeline = Pipeline.from_json(spec_path)
    print(f"loaded pipeline {pipeline.name!r} for dataset {pipeline.dataset!r} "
          f"({len(pipeline)} steps)")
    print("call counts:", pipeline.call_counts())

    session = Session(ExperimentConfig(scale=0.4, runs=2, datasets=[pipeline.dataset]))
    results = session.run(mode="stage", pipelines=pipeline,
                          engines=["pandas", "polars", "sparksql", "cudf"])

    for engine, per_engine in results.group_by("engine").items():
        rendered = ", ".join(f"{m.stage}={m.seconds:.2f}s" for m in per_engine)
        print(f"  {engine:<10} {rendered}")


if __name__ == "__main__":
    main()
