"""Scenario: run a pipeline declared in a JSON configuration file.

Bento's original workflow is configuration-driven: a JSON file names the
dataset and the sequence of preparators, and the framework deploys it on every
library.  This example loads ``examples/custom_pipeline.json``, runs it on a
few engines and prints per-stage timings.

Run with::

    python examples/json_pipeline.py
"""

from pathlib import Path

from repro import BentoRunner, PAPER_SERVER, Pipeline, create_engines
from repro.datasets import generate_dataset


def main() -> None:
    spec_path = Path(__file__).parent / "custom_pipeline.json"
    pipeline = Pipeline.from_json(spec_path)
    print(f"loaded pipeline {pipeline.name!r} for dataset {pipeline.dataset!r} "
          f"({len(pipeline)} steps)")
    print("call counts:", pipeline.call_counts())

    dataset = generate_dataset(pipeline.dataset, scale=0.4)
    sim = dataset.simulation_context(PAPER_SERVER, runs=2)
    runner = BentoRunner(runs=2)
    engines = create_engines(["pandas", "polars", "sparksql", "cudf"], PAPER_SERVER)

    for name, engine in engines.items():
        stages = runner.run_all_stages(engine, dataset.frame, pipeline, sim)
        rendered = ", ".join(f"{stage}={timing.seconds:.2f}s"
                             for stage, timing in stages.items())
        print(f"  {name:<10} {rendered}")


if __name__ == "__main__":
    main()
