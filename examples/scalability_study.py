"""Scenario: which library survives on *your* machine? (Figure 6 / Table 5)

Runs the most expensive Taxi pipeline on incremental dataset samples for the
three machine configurations of the paper (laptop, workstation, server) and
prints, for every engine, the runtime or the OOM marker — then derives the
Table 5 style "minimum configuration" summary.

Run with::

    python examples/scalability_study.py
"""

from repro import ExperimentConfig
from repro.experiments import fig6_scalability, table5_min_config


def main() -> None:
    config = ExperimentConfig(scale=0.3, runs=1)

    print("Running the Figure 6 scalability sweep (this executes the full "
          "pipeline on every sample size and machine)...\n")
    result = fig6_scalability.run(config, fractions=(0.05, 0.25, 0.5, 1.0))
    print(result.format())

    print("\nWho completes the full Taxi pipeline per machine?")
    for machine in ("laptop", "workstation", "server"):
        finishers = [engine for engine in result.seconds[machine][1.0]
                     if result.completed_full(machine, engine)]
        print(f"  {machine:<12} {', '.join(finishers) if finishers else '(nobody)'}")

    print("\nTable 5 — minimum machine configuration (I=laptop, II=workstation, III=server):")
    table5 = table5_min_config.run(config, datasets=("taxi",), fractions=(0.05, 0.25, 1.0))
    print(table5.format())


if __name__ == "__main__":
    main()
