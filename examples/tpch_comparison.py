"""Scenario: compare the engines on the TPC-H benchmark (Figure 7).

Generates a small physical TPC-H database, runs all 22 queries on every
engine (including DuckDB, the SQL reference point) through
:meth:`repro.Session.run_tpch`, and prints per-query simulated runtimes at the
nominal scale factor 10 together with the per-engine geometric means.

Run with::

    python examples/tpch_comparison.py
"""

from repro import ExperimentConfig, Session
from repro.core.metrics import geometric_mean_speedup


def main() -> None:
    session = Session(ExperimentConfig(runs=2))
    results = session.run_tpch(physical_scale_factor=0.002)
    engines = results.engines()
    queries = results.pipelines()
    print(f"TPC-H: {len(queries)} queries × {len(engines)} engines "
          f"({len(results)} measurements)\n")

    header = "query  " + "".join(f"{name:>11}" for name in engines)
    print(header)
    print("-" * len(header))
    table = results.pivot(rows="pipeline", cols="engine", value="seconds")
    failed = {(m.engine, m.pipeline) for m in results.failures()}
    for query in queries:
        cells = ["OOM".rjust(11) if (engine, query) in failed
                 else f"{table[query][engine]:>10.2f}s" for engine in engines]
        print(f"{query:<7}" + "".join(cells))

    print("\ngeometric mean (seconds):")
    for engine in engines:
        values = [m.seconds for m in results.ok().filter(engine=engine)]
        mean = geometric_mean_speedup(values) if values else float("inf")
        print(f"  {engine:<11} {mean:.3f}")


if __name__ == "__main__":
    main()
