"""Scenario: compare the engines on the TPC-H benchmark (Figure 7).

Generates a small physical TPC-H database, runs all 22 queries on every
engine (including DuckDB, the SQL reference point), and prints per-query
simulated runtimes at the nominal scale factor 10 together with the per-engine
geometric means.

Run with::

    python examples/tpch_comparison.py
"""

from repro import PAPER_SERVER, create_engines
from repro.engines import TPCH_ENGINES
from repro.tpch import TPCHRunner, generate_tpch, query_names


def main() -> None:
    data = generate_tpch(physical_scale_factor=0.002)
    print("TPC-H physical sample:",
          {name: table.num_rows for name, table in data.tables.items()})
    print(f"nominal scale factor: {data.nominal_scale_factor:g} "
          f"({data.nominal_memory_bytes() / 1024 ** 3:.1f} GiB in memory)\n")

    runner = TPCHRunner(data, runs=2)
    engines = create_engines(list(TPCH_ENGINES), machine=PAPER_SERVER)
    matrix = runner.run_matrix(engines)

    names = query_names()
    header = "query  " + "".join(f"{name:>11}" for name in engines)
    print(header)
    print("-" * len(header))
    for query in names:
        cells = []
        for engine_name in engines:
            outcome = matrix[engine_name][query]
            cells.append("OOM".rjust(11) if outcome.failed else f"{outcome.seconds:>10.2f}s")
        print(f"{query:<7}" + "".join(cells))

    print("\ngeometric mean (seconds):")
    import math
    for engine_name in engines:
        values = [matrix[engine_name][q].seconds for q in names
                  if not matrix[engine_name][q].failed]
        mean = math.exp(sum(math.log(v) for v in values) / len(values)) if values else float("inf")
        print(f"  {engine_name:<11} {mean:.3f}")


if __name__ == "__main__":
    main()
