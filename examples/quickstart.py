"""Quickstart: build a pipeline, run it on several simulated engines, compare.

This is the 5-minute tour of the library:

1. open a :class:`repro.Session` — the single entry point to the whole
   engine × dataset × pipeline matrix (datasets and engines build lazily);
2. declare a data-preparation pipeline with Bento preparators;
3. run it end to end on every engine available on the paper's server;
4. inspect the returned :class:`repro.ResultSet` — simulated runtimes,
   speedups over Pandas, OOM failures — and save it to JSON.

Run with::

    python examples/quickstart.py
"""

from repro import ExperimentConfig, Pipeline, Session
from repro.core.metrics import format_speedup


def build_pipeline() -> Pipeline:
    """A small but realistic preparation pipeline over the Taxi dataset."""
    pipeline = Pipeline("quickstart", "taxi", description="Taxi fare cleanup")
    pipeline.append("read")
    pipeline.append("getcols")
    pipeline.append("isna")
    pipeline.append("query", predicate={"op": ">", "left": {"col": "fare_amount"},
                                        "right": {"lit": 0}})
    pipeline.append("calccol", target="fare_per_mile",
                    expression={"op": "/", "left": {"col": "fare_amount"},
                                "right": {"col": "trip_distance"}})
    pipeline.append("chdate", columns=["pickup_datetime"])
    pipeline.append("group", by=["passenger_count"], agg={"fare_per_mile": "mean"})
    pipeline.append("dropna", subset=["fare_per_mile"])
    pipeline.append("write")
    return pipeline


def main() -> None:
    # 1. a session over a physically small Taxi sample priced at 77M rows
    session = Session(ExperimentConfig(scale=0.3, runs=3, datasets=["taxi"]))
    dataset = session.dataset("taxi")
    print(f"dataset: {dataset.name}, physical rows={dataset.physical_rows}, "
          f"nominal rows={dataset.nominal_rows}")

    # 2. the pipeline
    pipeline = build_pipeline()
    print(f"pipeline: {len(pipeline)} steps, stages={[s.value for s in pipeline.stages()]}")

    # 3. one call sweeps the matrix slice: every engine, this pipeline
    results = session.run(mode="full", pipelines=pipeline)

    # 4. report straight from the ResultSet
    speedups = results.speedup_vs("pandas", by="dataset")["taxi"]
    print(f"\n{'engine':<12}{'simulated time':>16}{'speedup vs Pandas':>20}")
    for m in sorted(results, key=lambda m: m.seconds):
        if m.failed:
            print(f"{m.engine:<12}{'OOM':>16}{'-':>20}")
            continue
        print(f"{m.engine:<12}{m.seconds:>14.2f}s"
              f"{format_speedup(speedups[m.engine]):>20}")

    results.to_json("quickstart_results.json")
    print(f"\nwrote {len(results)} measurements to quickstart_results.json")


if __name__ == "__main__":
    main()
