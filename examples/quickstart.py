"""Quickstart: build a pipeline, run it on several simulated engines, compare.

This is the 5-minute tour of the library:

1. generate a synthetic dataset (a small sample of the paper's Taxi dataset);
2. declare a data-preparation pipeline with Bento preparators;
3. run it on the simulated engines on the paper's evaluation server;
4. print the simulated runtimes and the speedup over Pandas.

Run with::

    python examples/quickstart.py
"""

from repro import BentoRunner, PAPER_SERVER, Pipeline, create_engines
from repro.core.metrics import format_speedup, speedup
from repro.datasets import generate_dataset


def build_pipeline() -> Pipeline:
    """A small but realistic preparation pipeline over the Taxi dataset."""
    pipeline = Pipeline("quickstart", "taxi", description="Taxi fare cleanup")
    pipeline.append("read")
    pipeline.append("getcols")
    pipeline.append("isna")
    pipeline.append("query", predicate={"op": ">", "left": {"col": "fare_amount"},
                                        "right": {"lit": 0}})
    pipeline.append("calccol", target="fare_per_mile",
                    expression={"op": "/", "left": {"col": "fare_amount"},
                                "right": {"col": "trip_distance"}})
    pipeline.append("chdate", columns=["pickup_datetime"])
    pipeline.append("group", by=["passenger_count"], agg={"fare_per_mile": "mean"})
    pipeline.append("dropna", subset=["fare_per_mile"])
    pipeline.append("write")
    return pipeline


def main() -> None:
    # 1. a physically small sample priced at the paper's nominal 77M rows
    dataset = generate_dataset("taxi", scale=0.3)
    sim = dataset.simulation_context(PAPER_SERVER, runs=3)
    print(f"dataset: {dataset.name}, physical rows={dataset.physical_rows}, "
          f"nominal rows={dataset.nominal_rows}")

    # 2. the pipeline
    pipeline = build_pipeline()
    print(f"pipeline: {len(pipeline)} steps, stages={[s.value for s in pipeline.stages()]}")

    # 3. run it on every engine available on the evaluation server
    runner = BentoRunner(runs=3)
    engines = create_engines(machine=PAPER_SERVER)
    timings = {name: runner.run_full(engine, dataset.frame, pipeline, sim)
               for name, engine in engines.items()}

    # 4. report
    baseline = timings["pandas"].seconds
    print(f"\n{'engine':<12}{'simulated time':>16}{'speedup vs Pandas':>20}")
    for name, timing in sorted(timings.items(), key=lambda kv: kv[1].seconds):
        if timing.failed:
            print(f"{name:<12}{'OOM':>16}{'-':>20}")
            continue
        print(f"{name:<12}{timing.seconds:>14.2f}s"
              f"{format_speedup(speedup(baseline, timing.seconds)):>20}")


if __name__ == "__main__":
    main()
